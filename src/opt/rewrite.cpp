#include "opt/rewrite.h"

#include <algorithm>
#include <numbers>

#include "common/error.h"
#include "ir/matrix.h"

namespace atlas {

Gate inverse_gate(const Gate& g) {
  switch (g.kind()) {
    // Self-inverse gates.
    case GateKind::H: case GateKind::X: case GateKind::Y: case GateKind::Z:
    case GateKind::CX: case GateKind::CY: case GateKind::CZ:
    case GateKind::CH: case GateKind::SWAP: case GateKind::CCX:
    case GateKind::CCZ: case GateKind::CSWAP:
      return g;
    case GateKind::S:
      return Gate::sdg(g.qubits()[0]);
    case GateKind::Sdg:
      return Gate::s(g.qubits()[0]);
    case GateKind::T:
      return Gate::tdg(g.qubits()[0]);
    case GateKind::Tdg:
      return Gate::t(g.qubits()[0]);
    case GateKind::SX:
      // SX^-1 = SX^dagger, expressible as a custom unitary.
      return Gate::unitary({g.qubits()[0]}, g.target_matrix().dagger());
    case GateKind::RX:
      return Gate::rx(g.qubits()[0], -g.params()[0]);
    case GateKind::RY:
      return Gate::ry(g.qubits()[0], -g.params()[0]);
    case GateKind::RZ:
      return Gate::rz(g.qubits()[0], -g.params()[0]);
    case GateKind::P:
      return Gate::p(g.qubits()[0], -g.params()[0]);
    case GateKind::U2:
      // u2(phi,lam) = u3(pi/2, phi, lam) and u3(t,phi,lam)^-1 =
      // u3(-t,-lam,-phi); staying parametric keeps symbolic circuits
      // invertible.
      return Gate::u3(g.qubits()[0], -std::numbers::pi / 2, -g.param(1),
                      -g.param(0));
    case GateKind::U3:
      return Gate::u3(g.qubits()[0], -g.param(0), -g.param(2), -g.param(1));
    case GateKind::CP:
      return Gate::cp(g.qubits()[0], g.qubits()[1], -g.params()[0]);
    case GateKind::CRX:
      return Gate::crx(g.control(0), g.target(0), -g.params()[0]);
    case GateKind::CRY:
      return Gate::cry(g.control(0), g.target(0), -g.params()[0]);
    case GateKind::CRZ:
      return Gate::crz(g.control(0), g.target(0), -g.params()[0]);
    case GateKind::RZZ:
      return Gate::rzz(g.qubits()[0], g.qubits()[1], -g.params()[0]);
    case GateKind::RXX:
      return Gate::rxx(g.qubits()[0], g.qubits()[1], -g.params()[0]);
    case GateKind::Unitary:
      return Gate::controlled_unitary(g.controls(), g.targets(),
                                      g.target_matrix().dagger());
  }
  throw Error("unhandled gate kind in inverse_gate");
}

Circuit inverse(const Circuit& circuit) {
  Circuit inv(circuit.num_qubits(), circuit.name() + "_inv");
  for (int i = circuit.num_gates() - 1; i >= 0; --i)
    inv.add(inverse_gate(circuit.gate(i)));
  return inv;
}

int depth(const Circuit& circuit) {
  std::vector<int> level(circuit.num_qubits(), 0);
  int d = 0;
  for (const Gate& g : circuit.gates()) {
    int l = 0;
    for (Qubit q : g.qubits()) l = std::max(l, level[q]);
    ++l;
    for (Qubit q : g.qubits()) level[q] = l;
    d = std::max(d, l);
  }
  return d;
}

CircuitStats statistics(const Circuit& circuit) {
  CircuitStats s;
  s.num_qubits = circuit.num_qubits();
  s.num_gates = circuit.num_gates();
  s.depth = depth(circuit);
  s.multi_qubit_gates = circuit.num_multi_qubit_gates();
  for (const Gate& g : circuit.gates()) {
    ++s.gate_histogram[gate_kind_name(g.kind())];
    if (g.non_insular_qubits().empty()) ++s.fully_insular_gates;
  }
  return s;
}

namespace opt {
namespace {

/// True iff `g` acts block-diagonally on qubit `q` (which must be one
/// of its qubits): fully diagonal gates are block-diagonal on every
/// qubit; controlled gates are jointly block-diagonal on any subset of
/// their control qubits.
bool block_diagonal_on(const Gate& g, Qubit q) {
  if (g.fully_diagonal()) return true;
  for (int pos = g.num_targets(); pos < g.num_qubits(); ++pos)
    if (g.qubits()[static_cast<std::size_t>(pos)] == q) return true;
  return false;
}

/// Is the parameter expression syntactically the exact constant 0?
bool zero_param(const Param& p) {
  return p.is_constant() && p.constant_term() == 0.0;
}

std::vector<Qubit> sorted_qubits(const std::vector<Qubit>& qs) {
  std::vector<Qubit> out = qs;
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

bool gates_commute(const Gate& a, const Gate& b) {
  for (Qubit q : a.qubits()) {
    if (!b.acts_on(q)) continue;
    if (!block_diagonal_on(a, q) || !block_diagonal_on(b, q)) return false;
  }
  // Disjoint supports always commute; shared qubits passed the joint
  // block-diagonality test, and the remainders are disjoint by
  // construction, so the operators commute exactly.
  return true;
}

bool same_qubits_up_to_symmetry(GateKind kind, const Gate& a, const Gate& b) {
  switch (kind) {
    // Fully symmetric kinds: any qubit permutation is the same gate.
    case GateKind::CZ:
    case GateKind::CP:
    case GateKind::SWAP:
    case GateKind::RZZ:
    case GateKind::RXX:
    case GateKind::CCZ:
      return sorted_qubits(a.qubits()) == sorted_qubits(b.qubits());
    // Controls of a Toffoli are interchangeable; the target is not.
    case GateKind::CCX:
      return a.target(0) == b.target(0) &&
             sorted_qubits(a.controls()) == sorted_qubits(b.controls());
    // Fredkin: swap targets are interchangeable under the one control.
    case GateKind::CSWAP:
      return a.control(0) == b.control(0) &&
             sorted_qubits(a.targets()) == sorted_qubits(b.targets());
    default:
      return a.qubits() == b.qubits();
  }
}

bool mergeable_rotation(GateKind kind) {
  switch (kind) {
    case GateKind::RX: case GateKind::RY: case GateKind::RZ:
    case GateKind::P: case GateKind::CP:
    case GateKind::CRX: case GateKind::CRY: case GateKind::CRZ:
    case GateKind::RZZ: case GateKind::RXX:
      return true;
    default:
      return false;
  }
}

bool is_inverse_pair(const Gate& a, const Gate& b) {
  const GateKind k = a.kind();
  if (mergeable_rotation(k)) {
    return b.kind() == k && same_qubits_up_to_symmetry(k, a, b) &&
           zero_param(a.param(0) + b.param(0));
  }
  switch (k) {
    // Self-inverse, parameter-free.
    case GateKind::H: case GateKind::X: case GateKind::Y: case GateKind::Z:
    case GateKind::CX: case GateKind::CY: case GateKind::CZ:
    case GateKind::CH: case GateKind::SWAP: case GateKind::CCX:
    case GateKind::CCZ: case GateKind::CSWAP:
      return b.kind() == k && same_qubits_up_to_symmetry(k, a, b);
    case GateKind::S:
      return b.kind() == GateKind::Sdg && a.qubits() == b.qubits();
    case GateKind::Sdg:
      return b.kind() == GateKind::S && a.qubits() == b.qubits();
    case GateKind::T:
      return b.kind() == GateKind::Tdg && a.qubits() == b.qubits();
    case GateKind::Tdg:
      return b.kind() == GateKind::T && a.qubits() == b.qubits();
    case GateKind::U3:
      // u3(t,phi,lam)^-1 = u3(-t,-lam,-phi).
      return b.kind() == GateKind::U3 && a.qubits() == b.qubits() &&
             zero_param(a.param(0) + b.param(0)) &&
             zero_param(a.param(1) + b.param(2)) &&
             zero_param(a.param(2) + b.param(1));
    default:
      // SX/U2/Unitary: either no exact-kind inverse in the library or
      // (Unitary) possibly non-unitary trajectory operators whose
      // dagger is not an inverse. Leave them to run resynthesis.
      return false;
  }
}

bool is_identity_gate(const Gate& g, double tol) {
  if (mergeable_rotation(g.kind()))
    return !g.params().empty() && zero_param(g.param(0));
  if (g.kind() == GateKind::U3)
    return zero_param(g.param(0)) && zero_param(g.param(1)) &&
           zero_param(g.param(2));
  if (g.kind() == GateKind::Unitary && g.num_controls() == 0) {
    const Matrix& m = g.target_matrix();
    return Matrix::max_abs_diff(m, Matrix::identity(m.rows())) <= tol;
  }
  return false;
}

bool constant_1q_gate(const Gate& g) {
  return g.num_qubits() == 1 && g.num_controls() == 0 &&
         !g.is_parameterized();
}

}  // namespace opt
}  // namespace atlas
