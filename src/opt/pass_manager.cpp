#include "opt/pass_manager.h"

#include <algorithm>

#include "common/error.h"
#include "common/timer.h"

namespace atlas::opt {
namespace {

/// Passes that run once after the fixpoint loop instead of inside it:
/// reorder permutes without shrinking, so iterating it against the
/// local passes could ping-pong.
bool tail_pass(const std::string& name) { return name == "reorder"; }

}  // namespace

std::vector<std::string> default_passes(int level) {
  ATLAS_CHECK(level >= 0 && level <= 2,
              "optimization level must be in [0, 2], got " << level);
  std::vector<std::string> names;
  if (level >= 1) {
    names.push_back("cancel-inverses");
    names.push_back("merge-rotations");
    names.push_back("drop-identities");
  }
  if (level >= 2) {
    // Insert the structural resyntheses between merging and identity
    // elimination so their products are cleaned up in the same round.
    names = {"cancel-inverses", "merge-rotations", "block2q",
             "resynth-1q",      "drop-identities", "reorder"};
  }
  return names;
}

PassManager::PassManager(const OptOptions& options) : options_(options) {
  ATLAS_CHECK(options.max_rounds >= 1,
              "opt.max_rounds must be >= 1, got " << options.max_rounds);
  std::vector<std::string> names = default_passes(options.level);
  for (const std::string& name : options.enable)
    if (std::find(names.begin(), names.end(), name) == names.end())
      names.push_back(name);
  for (const std::string& name : options.disable)
    names.erase(std::remove(names.begin(), names.end(), name), names.end());
  for (const std::string& name : names) {
    auto pass = pass_registry().create(name);
    (tail_pass(name) ? tail_passes_ : loop_passes_).push_back(std::move(pass));
  }
}

std::vector<std::string> PassManager::pass_names() const {
  std::vector<std::string> names;
  for (const auto& p : loop_passes_) names.push_back(p->name());
  for (const auto& p : tail_passes_) names.push_back(p->name());
  return names;
}

Circuit PassManager::run(const Circuit& circuit, const PassContext& caller_ctx,
                         OptReport* report) const {
  Timer total;
  // The manager's own OptOptions::pass is authoritative — callers
  // supply the machine context, the manager the pass knobs.
  PassContext ctx = caller_ctx;
  ctx.options = options_.pass;
  Circuit current = circuit;
  std::vector<PassStats> stats;
  for (const auto& p : loop_passes_) stats.push_back({p->name(), 0, 0, 0});
  for (const auto& p : tail_passes_) stats.push_back({p->name(), 0, 0, 0});

  int rounds = 0;
  if (!loop_passes_.empty()) {
    for (; rounds < options_.max_rounds; ++rounds) {
      bool changed = false;
      for (std::size_t pi = 0; pi < loop_passes_.size(); ++pi) {
        Timer t;
        const int before = current.num_gates();
        const bool did = loop_passes_[pi]->run(current, ctx);
        stats[pi].seconds += t.seconds();
        if (did) {
          ++stats[pi].applications;
          stats[pi].gates_removed += before - current.num_gates();
          changed = true;
        }
      }
      if (!changed) break;
    }
  }
  for (std::size_t ti = 0; ti < tail_passes_.size(); ++ti) {
    const std::size_t pi = loop_passes_.size() + ti;
    Timer t;
    const int before = current.num_gates();
    if (tail_passes_[ti]->run(current, ctx)) {
      ++stats[pi].applications;
      stats[pi].gates_removed += before - current.num_gates();
    }
    stats[pi].seconds += t.seconds();
  }

  if (report != nullptr) {
    report->gates_before = circuit.num_gates();
    report->gates_after = current.num_gates();
    report->rounds = rounds;
    report->seconds = total.seconds();
    report->passes = std::move(stats);
  }
  return current;
}

}  // namespace atlas::opt
