#pragma once

/// \file rewrite.h
/// Circuit- and gate-level rewrite primitives shared by the optimizer
/// passes (opt/passes.cpp) plus the general circuit toolbox that used
/// to live in ir/transform.h — inversion, depth, and summary
/// statistics. Consolidated here so every structural rewrite (and its
/// soundness argument) lives next to the pass framework that applies
/// it; the toolbox entry points keep their old names in namespace
/// atlas, callers only change the include.

#include <map>
#include <string>
#include <vector>

#include "ir/circuit.h"

namespace atlas {

/// The inverse circuit: gates reversed, each replaced by its dagger.
/// inverse(c) applied after c maps any state back to itself.
Circuit inverse(const Circuit& circuit);

/// The dagger of a single gate.
Gate inverse_gate(const Gate& gate);

/// Circuit depth: longest dependency chain (layers of parallel gates).
int depth(const Circuit& circuit);

struct CircuitStats {
  int num_qubits = 0;
  int num_gates = 0;
  int depth = 0;
  int multi_qubit_gates = 0;
  int fully_insular_gates = 0;
  std::map<std::string, int> gate_histogram;
};

CircuitStats statistics(const Circuit& circuit);

namespace opt {

/// True iff the two gates provably commute as operators. Conservative
/// and purely structural (never numeric on rotation parameters, so the
/// answer is valid for every binding): gates on disjoint qubits
/// commute; otherwise both gates must act *block-diagonally* on every
/// shared qubit — i.e. be fully diagonal, or hold the shared qubit as
/// a control. Two operators that are simultaneously block-diagonal
/// over the shared qubits and act on disjoint remainders commute
/// exactly.
bool gates_commute(const Gate& a, const Gate& b);

/// True iff the gates have the same qubit tuple, honoring each kind's
/// qubit symmetry: cz/cp/swap/rzz/rxx/ccz are invariant under any
/// permutation of their qubits, ccx under swapping its controls, cswap
/// under swapping its targets; every other kind is order-sensitive.
/// Both gates must be of kind `kind`.
bool same_qubits_up_to_symmetry(GateKind kind, const Gate& a, const Gate& b);

/// True iff `b` is syntactically the inverse of `a`: self-inverse
/// parameter-free pairs (h/x/.../ccx), s<->sdg, t<->tdg, and
/// rotation-family pairs whose parameter expressions sum to the exact
/// constant 0 (symbolic-safe: rz(theta) cancels rz(-theta)). Opaque
/// Unitary gates are never matched — their matrices may be non-unitary
/// (Kraus trajectory operators), where dagger != inverse.
bool is_inverse_pair(const Gate& a, const Gate& b);

/// True for the rotation-family kinds the merge pass accumulates:
/// rx/ry/rz/p/cp/crx/cry/crz/rzz/rxx (one angle, same-kind products
/// compose by parameter addition, exactly and including global phase).
bool mergeable_rotation(GateKind kind);

/// True iff the gate is exactly the identity (global phase included):
/// a mergeable rotation at the syntactic constant 0, or an uncontrolled
/// Unitary within `tol` of I. u3(0,0,0) also qualifies.
bool is_identity_gate(const Gate& g, double tol);

/// True iff the gate is a constant (no free symbols) uncontrolled
/// single-qubit gate — the raw material of 1q run resynthesis.
bool constant_1q_gate(const Gate& g);

}  // namespace opt
}  // namespace atlas
