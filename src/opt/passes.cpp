// The built-in optimizer passes. Every rewrite here is *exact* — the
// optimized circuit applies the same operator, global phase included —
// and symbolic-parameter-safe (see the contract in opt/pass.h). Each
// pass documents its soundness argument inline.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/error.h"
#include "ir/matrix.h"
#include "opt/pass.h"
#include "opt/rewrite.h"

namespace atlas::opt {
namespace {

Circuit rebuild(const Circuit& src, std::vector<Gate> gates) {
  Circuit out(src.num_qubits(), src.name());
  for (Gate& g : gates) out.add(std::move(g));
  return out;
}

/// Compacts (gates, alive) into a fresh gate list.
std::vector<Gate> compact(std::vector<Gate>& gates,
                          const std::vector<bool>& alive) {
  std::vector<Gate> out;
  out.reserve(gates.size());
  for (std::size_t i = 0; i < gates.size(); ++i)
    if (alive[i]) out.push_back(std::move(gates[i]));
  return out;
}

// --- cancel-inverses ------------------------------------------------------
//
// Removes pairs (g_i, g_k), i < k, where g_k is syntactically the
// inverse of g_i and g_i commutes with every surviving gate strictly
// between them. Soundness: g_i slides right through the commuting
// interveners to adjacency with g_k, where g_i * g_k = I exactly
// (self-inverse library gates; rotation pairs whose parameter
// expressions sum to the syntactic constant 0, valid for any binding).
// Iterates to fixpoint so newly adjacent pairs cancel too.
class CancelInversesPass final : public Pass {
 public:
  std::string name() const override { return "cancel-inverses"; }

  bool run(Circuit& circuit, const PassContext&) const override {
    std::vector<Gate> gates = circuit.gates();
    bool changed_any = false;
    for (bool changed = true; changed;) {
      changed = false;
      std::vector<bool> alive(gates.size(), true);
      for (std::size_t i = 0; i < gates.size(); ++i) {
        if (!alive[i]) continue;
        for (std::size_t k = i + 1; k < gates.size(); ++k) {
          if (!alive[k]) continue;
          if (is_inverse_pair(gates[i], gates[k])) {
            alive[i] = alive[k] = false;
            changed = true;
            break;
          }
          if (!gates_commute(gates[i], gates[k])) break;
        }
      }
      if (changed) {
        gates = compact(gates, alive);
        changed_any = true;
      }
    }
    if (changed_any) circuit = rebuild(circuit, std::move(gates));
    return changed_any;
  }
};

// --- merge-rotations ------------------------------------------------------
//
// Folds same-kind rotation gates on the same qubit tuple (up to the
// kind's qubit symmetry) into one gate whose parameter is the affine
// sum — rz(a) rz(b) = rz(a+b) exactly, and likewise for the whole
// one-angle family, symbolic expressions included. The scan looks past
// gates that commute with the accumulating rotation (diagonal
// neighbors, disjoint supports, control-side crossings), so rotations
// merge across commuting diagonals, not just literal adjacency. A
// merged parameter that is syntactically the constant 0 deletes the
// gate (rx(0) = I exactly; controlled rotations at 0 are controlled-I).
class MergeRotationsPass final : public Pass {
 public:
  std::string name() const override { return "merge-rotations"; }

  bool run(Circuit& circuit, const PassContext&) const override {
    std::vector<Gate> gates = circuit.gates();
    std::vector<bool> alive(gates.size(), true);
    bool changed = false;
    for (std::size_t i = 0; i < gates.size(); ++i) {
      if (!alive[i] || !mergeable_rotation(gates[i].kind())) continue;
      Param total = gates[i].param(0);
      bool merged = false;
      for (std::size_t k = i + 1; k < gates.size(); ++k) {
        if (!alive[k]) continue;
        if (gates[k].kind() == gates[i].kind() &&
            same_qubits_up_to_symmetry(gates[i].kind(), gates[i],
                                       gates[k])) {
          total += gates[k].param(0);
          alive[k] = false;
          merged = true;
          continue;  // keep scanning: the merged gate has the same
                     // support, so the commute frontier is unchanged
        }
        if (!gates_commute(gates[i], gates[k])) break;
      }
      if (!merged) continue;
      changed = true;
      if (total.is_constant() && total.constant_term() == 0.0)
        alive[i] = false;
      else
        gates[i] = gates[i].with_params({std::move(total)});
    }
    if (changed) circuit = rebuild(circuit, compact(gates, alive));
    return changed;
  }
};

// --- block2q --------------------------------------------------------------
//
// Resynthesizes CX-conjugated diagonals: CX(c,t) . D(t) . CX(c,t)
// where every gate on t between the pair is a diagonal single-qubit
// gate. The identity (exact, global phase included, valid for
// non-unitary diagonals too):
//
//   CX(c,t) diag(d0,d1)(t) CX(c,t) = diag(d0,d1,d1,d0) over |c,t>
//
// so constant middles fold into ONE two-qubit diagonal Unitary gate
// (fully insular), a symbolic rz(theta) becomes rzz(c,t,theta), and a
// symbolic p(theta) becomes p(c,theta) p(t,theta) cp(c,t,-2*theta)
// (phases: 01 -> theta, 10 -> theta, 11 -> 0; exact). Gates off t
// between the pair must commute with the CX (then they also commute
// with the middles, whose support is {t} alone, and with the rewritten
// diagonals) and stay in place. This turns the CX-RZ-CX Trotter blocks
// of Ising-style circuits into single rzz gates and ZZ-feature-map
// entanglers into insular diagonals — the paper's staging cost model
// rewards exactly that.
class Block2qPass final : public Pass {
 public:
  std::string name() const override { return "block2q"; }

  bool run(Circuit& circuit, const PassContext&) const override {
    std::vector<Gate> gates = circuit.gates();
    std::vector<bool> alive(gates.size(), true);
    // Replacement gates for a position (the opening CX's slot).
    std::vector<std::vector<Gate>> replacement(gates.size());
    bool changed = false;
    for (std::size_t i = 0; i < gates.size(); ++i) {
      if (!alive[i] || gates[i].kind() != GateKind::CX) continue;
      const Qubit c = gates[i].control(0);
      const Qubit t = gates[i].target(0);
      std::vector<std::size_t> middles;
      std::size_t close = gates.size();
      for (std::size_t k = i + 1; k < gates.size(); ++k) {
        if (!alive[k]) continue;
        const Gate& g = gates[k];
        if (g.kind() == GateKind::CX && g.control(0) == c &&
            g.target(0) == t) {
          close = k;
          break;
        }
        if (g.acts_on(t)) {
          if (diag_1q_middle(g, t)) {
            middles.push_back(k);
            continue;
          }
          break;
        }
        if (!gates_commute(gates[i], g)) break;
      }
      if (close == gates.size() || middles.empty()) continue;
      alive[i] = alive[close] = false;
      std::vector<Gate>& out = replacement[i];
      // Fold runs of constant middles into one diagonal product;
      // CX D1 D2 CX = (CX D1 CX)(CX D2 CX), so each middle rewrites
      // independently and constant neighbors may share one gate.
      Amp d0(1, 0), d1(1, 0);
      bool pending = false;
      auto flush = [&] {
        if (!pending) return;
        Matrix m(4, 4);
        m(0, 0) = d0;
        m(1, 1) = d1;
        m(2, 2) = d1;
        m(3, 3) = d0;
        out.push_back(Gate::unitary({t, c}, std::move(m)));
        d0 = Amp(1, 0);
        d1 = Amp(1, 0);
        pending = false;
      };
      for (std::size_t k : middles) {
        const Gate& m = gates[k];
        alive[k] = false;
        if (!m.is_parameterized()) {
          const Matrix mm = m.target_matrix();
          d0 *= mm(0, 0);
          d1 *= mm(1, 1);
          pending = true;
        } else if (m.kind() == GateKind::RZ) {
          flush();
          out.push_back(Gate::rzz(c, t, m.param(0)));
        } else {  // symbolic P (the only other diagonal 1q kind)
          flush();
          out.push_back(Gate::p(c, m.param(0)));
          out.push_back(Gate::p(t, m.param(0)));
          out.push_back(Gate::cp(c, t, m.param(0) * -2.0));
        }
      }
      flush();
      changed = true;
    }
    if (!changed) return false;
    std::vector<Gate> rebuilt;
    rebuilt.reserve(gates.size());
    for (std::size_t i = 0; i < gates.size(); ++i) {
      for (Gate& g : replacement[i]) rebuilt.push_back(std::move(g));
      if (alive[i]) rebuilt.push_back(std::move(gates[i]));
    }
    circuit = rebuild(circuit, std::move(rebuilt));
    return true;
  }

 private:
  /// Rewritable middle: an uncontrolled diagonal single-qubit gate on
  /// t, either constant (folds into the diagonal product — non-unitary
  /// trajectory diagonals included, the identity is algebraic) or a
  /// symbolic rz/p.
  static bool diag_1q_middle(const Gate& g, Qubit t) {
    if (g.num_qubits() != 1 || g.num_controls() != 0 || g.qubits()[0] != t ||
        !g.fully_diagonal())
      return false;
    if (!g.is_parameterized()) return true;
    return g.kind() == GateKind::RZ || g.kind() == GateKind::P;
  }
};

// --- resynth-1q -----------------------------------------------------------
//
// Collapses maximal runs of >= min_run_length constant uncontrolled
// single-qubit gates on one qubit into a single gate carrying the
// exact matrix product (no phase dropped): the identity product
// disappears entirely, anything else becomes one Unitary gate whose
// diagonality/anti-diagonality — and thus insularity — the gate
// library re-derives from the matrix. Gates on other qubits between
// run members commute trivially (disjoint support), so the product
// lands at the first member's slot. Symbolic gates break runs: they
// have no numeric matrix and are left to the affine merge pass.
class Resynth1qPass final : public Pass {
 public:
  std::string name() const override { return "resynth-1q"; }

  bool run(Circuit& circuit, const PassContext& ctx) const override {
    const int min_run = std::max(2, ctx.options.min_run_length);
    std::vector<Gate> gates = circuit.gates();
    std::vector<bool> alive(gates.size(), true);
    std::vector<std::vector<std::size_t>> run(
        static_cast<std::size_t>(circuit.num_qubits()));
    bool changed = false;
    auto flush = [&](Qubit q) {
      auto& r = run[static_cast<std::size_t>(q)];
      if (static_cast<int>(r.size()) >= min_run) {
        Matrix product = Matrix::identity(2);
        for (std::size_t idx : r)
          product = gates[idx].target_matrix() * product;
        for (std::size_t idx : r) alive[idx] = false;
        if (Matrix::max_abs_diff(product, Matrix::identity(2)) >
            ctx.options.identity_tol) {
          // The product lands in the first member's slot; an exact
          // identity (phase included) just vanishes.
          gates[r.front()] = Gate::unitary({q}, std::move(product));
          alive[r.front()] = true;
        }
        changed = true;
      }
      r.clear();
    };
    for (std::size_t i = 0; i < gates.size(); ++i) {
      const Gate& g = gates[i];
      if (constant_1q_gate(g)) {
        run[static_cast<std::size_t>(g.qubits()[0])].push_back(i);
        continue;
      }
      for (Qubit q : g.qubits()) flush(q);
    }
    for (Qubit q = 0; q < circuit.num_qubits(); ++q) flush(q);
    if (changed) circuit = rebuild(circuit, compact(gates, alive));
    return changed;
  }
};

// --- drop-identities ------------------------------------------------------
//
// Removes gates that are exactly the identity: zero-constant rotations
// (rx(0) = I bit-exactly; controlled rotations at 0 are controlled-I),
// u3(0,0,0), and uncontrolled Unitary gates within identity_tol of I.
// With up_to_global_phase set it additionally drops scalar gates
// e^{ia} * I (|scalar| = 1) — off by default to keep the engine's
// amplitude-level oracles exact.
class DropIdentitiesPass final : public Pass {
 public:
  std::string name() const override { return "drop-identities"; }

  bool run(Circuit& circuit, const PassContext& ctx) const override {
    std::vector<Gate> gates = circuit.gates();
    std::vector<bool> alive(gates.size(), true);
    bool changed = false;
    for (std::size_t i = 0; i < gates.size(); ++i) {
      const Gate& g = gates[i];
      bool drop = is_identity_gate(g, ctx.options.identity_tol);
      if (!drop && ctx.options.up_to_global_phase &&
          g.kind() == GateKind::Unitary && g.num_controls() == 0) {
        const Matrix& m = g.target_matrix();
        const Amp s = m(0, 0);
        if (std::abs(std::abs(s) - 1.0) <= ctx.options.identity_tol) {
          Matrix scaled = Matrix::identity(m.rows());
          for (int r = 0; r < scaled.rows(); ++r) scaled(r, r) = s;
          drop = Matrix::max_abs_diff(m, scaled) <= ctx.options.identity_tol;
        }
      }
      if (drop) {
        alive[i] = false;
        changed = true;
      }
    }
    if (changed) circuit = rebuild(circuit, compact(gates, alive));
    return changed;
  }
};

// --- reorder --------------------------------------------------------------
//
// Commutation-aware packing: chooses another linear extension of the
// *commutation-relaxed* dependency order (edges only between gate
// pairs that share a qubit AND provably do not commute) that groups
// gates by overlapping non-insular qubit sets, then keeps it only if a
// greedy staging proxy says the stage count strictly drops. Soundness:
// any linear extension of that partial order is reachable by adjacent
// transpositions of commuting pairs, each of which preserves the
// operator product exactly. The relaxation is precisely what the
// stagers cannot do — their dependency DAG is share-a-qubit based.
class ReorderPass final : public Pass {
 public:
  std::string name() const override { return "reorder"; }

  bool run(Circuit& circuit, const PassContext& ctx) const override {
    const int n = circuit.num_gates();
    const int local = ctx.num_local_qubits;
    if (local <= 0 || n < 2 || n > ctx.options.reorder_max_gates ||
        circuit.num_qubits() > 63)
      return false;
    const std::vector<Gate>& gates = circuit.gates();

    std::vector<std::uint64_t> ni(static_cast<std::size_t>(n), 0);
    for (int i = 0; i < n; ++i)
      for (Qubit q : gates[static_cast<std::size_t>(i)].non_insular_qubits())
        ni[static_cast<std::size_t>(i)] |= std::uint64_t{1} << q;

    // Commutation-relaxed dependency edges (O(n^2), capped above).
    std::vector<std::vector<int>> succs(static_cast<std::size_t>(n));
    std::vector<int> pending(static_cast<std::size_t>(n), 0);
    for (int i = 0; i < n; ++i) {
      const Gate& a = gates[static_cast<std::size_t>(i)];
      for (int k = i + 1; k < n; ++k) {
        const Gate& b = gates[static_cast<std::size_t>(k)];
        bool shared = false;
        for (Qubit q : a.qubits())
          if (b.acts_on(q)) {
            shared = true;
            break;
          }
        if (shared && !gates_commute(a, b)) {
          succs[static_cast<std::size_t>(i)].push_back(k);
          ++pending[static_cast<std::size_t>(k)];
        }
      }
    }

    // Greedy list scheduling: emit insular gates freely, then gates
    // fitting the current non-insular window, then the smallest-growth
    // gate; open a new window when nothing fits. Ties break on the
    // original index, so the schedule is deterministic and stable.
    std::vector<int> ready;
    for (int i = 0; i < n; ++i)
      if (pending[static_cast<std::size_t>(i)] == 0) ready.push_back(i);
    std::vector<int> order;
    order.reserve(static_cast<std::size_t>(n));
    std::uint64_t cur = 0;
    while (!ready.empty()) {
      int best = -1;
      int best_growth = std::numeric_limits<int>::max();
      for (int g : ready) {
        const std::uint64_t u = cur | ni[static_cast<std::size_t>(g)];
        const int width = std::popcount(u);
        if (width > local) continue;  // would overflow the window
        const int growth = width - std::popcount(cur);
        if (growth < best_growth || (growth == best_growth && g < best)) {
          best = g;
          best_growth = growth;
        }
      }
      if (best < 0) {
        // Nothing fits: open a fresh window with the smallest set.
        cur = 0;
        for (int g : ready) {
          const int width = std::popcount(ni[static_cast<std::size_t>(g)]);
          if (best < 0 || width < best_growth ||
              (width == best_growth && g < best)) {
            best = g;
            best_growth = width;
          }
        }
      }
      cur |= ni[static_cast<std::size_t>(best)];
      order.push_back(best);
      ready.erase(std::find(ready.begin(), ready.end(), best));
      for (int s : succs[static_cast<std::size_t>(best)])
        if (--pending[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
    }

    bool identity = true;
    for (int i = 0; i < n; ++i)
      if (order[static_cast<std::size_t>(i)] != i) {
        identity = false;
        break;
      }
    if (identity) return false;
    std::vector<std::uint64_t> cand_ni;
    cand_ni.reserve(static_cast<std::size_t>(n));
    for (int idx : order) cand_ni.push_back(ni[static_cast<std::size_t>(idx)]);
    if (proxy_stages(cand_ni, local) >= proxy_stages(ni, local))
      return false;  // keep the authored order unless strictly better
    std::vector<Gate> reordered;
    reordered.reserve(static_cast<std::size_t>(n));
    for (int idx : order) reordered.push_back(gates[static_cast<std::size_t>(idx)]);
    circuit = rebuild(circuit, std::move(reordered));
    return true;
  }

 private:
  /// Greedy contiguous-grouping stage estimate: how many maximal runs
  /// with non-insular union <= local does this order split into?
  static int proxy_stages(const std::vector<std::uint64_t>& ni, int local) {
    int stages = 0;
    std::uint64_t cur = 0;
    bool open = false;
    for (std::uint64_t m : ni) {
      if (m == 0) continue;
      const std::uint64_t u = cur | m;
      if (!open || std::popcount(u) > local) {
        ++stages;
        cur = m;
        open = true;
      } else {
        cur = u;
      }
    }
    return stages;
  }
};

}  // namespace

Registry<Pass>& pass_registry() {
  static Registry<Pass>* registry = [] {
    auto* r = new Registry<Pass>("optimizer pass");
    r->add("cancel-inverses",
           [] { return std::make_shared<CancelInversesPass>(); });
    r->add("merge-rotations",
           [] { return std::make_shared<MergeRotationsPass>(); });
    r->add("block2q", [] { return std::make_shared<Block2qPass>(); });
    r->add("resynth-1q", [] { return std::make_shared<Resynth1qPass>(); });
    r->add("drop-identities",
           [] { return std::make_shared<DropIdentitiesPass>(); });
    r->add("reorder", [] { return std::make_shared<ReorderPass>(); });
    return r;
  }();
  return *registry;
}

}  // namespace atlas::opt
