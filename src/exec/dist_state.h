#pragma once

/// \file dist_state.h
/// The distributed state vector: 2^(R+G) shards of 2^L amplitudes,
/// each conceptually resident on one (virtual) GPU or in node DRAM,
/// together with the current qubit layout.

#include <vector>

#include "common/types.h"
#include "exec/layout.h"
#include "sim/state_vector.h"

namespace atlas::exec {

class DistState {
 public:
  /// |0...0> distributed over 2^(num_qubits - layout.num_local) shards.
  static DistState zero_state(const Layout& layout);

  /// Distributes a full state vector according to `layout`.
  static DistState scatter(const StateVector& sv, const Layout& layout);

  /// Reassembles the full state vector (tests and small examples).
  StateVector gather() const;

  int num_qubits() const { return layout_.num_qubits(); }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  Index shard_size() const { return Index{1} << layout_.num_local; }

  Layout& layout() { return layout_; }
  const Layout& layout() const { return layout_; }

  std::vector<Amp>& shard(int s) { return shards_[s]; }
  const std::vector<Amp>& shard(int s) const { return shards_[s]; }

  std::vector<std::vector<Amp>>& shards() { return shards_; }

 private:
  Layout layout_;
  std::vector<std::vector<Amp>> shards_;
};

}  // namespace atlas::exec
