#include "exec/partial_eval.h"

#include <algorithm>

#include "common/error.h"

namespace atlas::exec {

Matrix restrict_diagonal(const Matrix& full, const std::vector<int>& local_pos,
                         Index fixed) {
  const int lk = static_cast<int>(local_pos.size());
  Matrix restricted(1 << lk, 1 << lk);
  for (Index v = 0; v < (Index{1} << lk); ++v) {
    const Index full_idx = fixed | spread_bits(v, local_pos);
    restricted(static_cast<int>(v), static_cast<int>(v)) =
        full(static_cast<int>(full_idx), static_cast<int>(full_idx));
  }
  return restricted;
}

LocalOp partial_evaluate(const Gate& g, const Layout& layout, int shard) {
  LocalOp op;
  bool any_nonlocal = false;
  for (Qubit q : g.qubits()) any_nonlocal |= !layout.is_local(q);
  if (!any_nonlocal) {
    op.gate = g;
    return op;
  }

  // Case 1: fully diagonal gate — restrict the diagonal by the fixed
  // non-local bits.
  if (g.fully_diagonal()) {
    const Matrix full = g.full_matrix();
    const int k = g.num_qubits();
    std::vector<Qubit> local_qubits;
    Index fixed = 0;
    for (int pos = 0; pos < k; ++pos) {
      const Qubit q = g.qubits()[pos];
      if (layout.is_local(q)) {
        local_qubits.push_back(q);
      } else if (layout.nonlocal_bit(q, shard)) {
        fixed |= bit(pos);
      }
    }
    if (local_qubits.empty()) {
      op.scale = full(static_cast<int>(fixed), static_cast<int>(fixed));
      op.skip = op.scale == Amp(1, 0);
      return op;
    }
    // Positions of the local qubits within the gate's index space.
    std::vector<int> local_pos;
    for (int pos = 0; pos < k; ++pos)
      if (layout.is_local(g.qubits()[pos])) local_pos.push_back(pos);
    op.gate =
        Gate::unitary(local_qubits, restrict_diagonal(full, local_pos, fixed));
    return op;
  }

  // Case 2: 1-qubit anti-diagonal gate (X/Y) on a non-local qubit —
  // flip the shard-id mapping and scale by the anti-diagonal entry.
  if (g.antidiagonal_1q() && !layout.is_local(g.qubits()[0])) {
    const Qubit q = g.qubits()[0];
    const Matrix m = g.target_matrix();
    const bool old_bit = layout.nonlocal_bit(q, shard);
    // After the flip this shard represents value (1 - old_bit); its
    // contents pick up u_{new,old}.
    op.scale = old_bit ? m(0, 1) : m(1, 0);
    op.flip_phys_bit = layout.phys_of_logical[q];
    op.skip = false;
    return op;
  }

  // Case 3: controlled gate with non-local (insular) controls.
  std::vector<Qubit> local_controls;
  for (Qubit c : g.controls()) {
    if (layout.is_local(c)) {
      local_controls.push_back(c);
    } else if (!layout.nonlocal_bit(c, shard)) {
      op.skip = true;  // control is |0>: identity on this shard
      return op;
    }
    // control is |1>: drop it.
  }
  for (Qubit t : g.targets())
    ATLAS_CHECK(layout.is_local(t),
                "non-insular qubit " << t << " of gate " << g.to_string()
                                     << " is not local (staging bug)");
  op.gate = Gate::controlled_unitary(std::move(local_controls), g.targets(),
                                     g.target_matrix());
  return op;
}

}  // namespace atlas::exec
