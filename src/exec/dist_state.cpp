#include "exec/dist_state.h"

#include "common/error.h"

namespace atlas::exec {
namespace {

/// Logical state index -> (shard, offset) under `layout`.
std::pair<int, Index> locate(const Layout& l, Index logical_index) {
  Index phys = 0;
  for (int q = 0; q < l.num_qubits(); ++q)
    if (test_bit(logical_index, q)) phys |= bit(l.phys_of_logical[q]);
  const Index offset = phys & ((Index{1} << l.num_local) - 1);
  const Index high = phys >> l.num_local;
  return {static_cast<int>(high ^ l.shard_xor), offset};
}

}  // namespace

DistState DistState::zero_state(const Layout& layout) {
  DistState st;
  st.layout_ = layout;
  const int num_shards = 1 << (layout.num_qubits() - layout.num_local);
  st.shards_.assign(num_shards,
                    std::vector<Amp>(Index{1} << layout.num_local, Amp{}));
  const auto [s, o] = locate(layout, 0);
  st.shards_[s][o] = Amp(1, 0);
  return st;
}

DistState DistState::scatter(const StateVector& sv, const Layout& layout) {
  ATLAS_CHECK(sv.num_qubits() == layout.num_qubits(),
              "state/layout qubit mismatch");
  DistState st;
  st.layout_ = layout;
  const int num_shards = 1 << (layout.num_qubits() - layout.num_local);
  st.shards_.assign(num_shards,
                    std::vector<Amp>(Index{1} << layout.num_local, Amp{}));
  for (Index i = 0; i < sv.size(); ++i) {
    const auto [s, o] = locate(layout, i);
    st.shards_[s][o] = sv[i];
  }
  return st;
}

StateVector DistState::gather() const {
  StateVector sv(num_qubits());
  sv[0] = Amp{};
  for (Index i = 0; i < sv.size(); ++i) {
    const auto [s, o] = locate(layout_, i);
    sv[i] = shards_[s][o];
  }
  return sv;
}

}  // namespace atlas::exec
