#pragma once

/// \file partial_eval.h
/// Partial evaluation of gates whose insular qubits are non-local
/// (Appendix B-a, "insular qubits"): before a shard executes a gate,
/// the known values of the shard's regional/global qubits are folded
/// in, leaving a smaller purely-local operation:
///
///  * non-local control = 0  -> the gate is the identity (skip);
///  * non-local control = 1  -> drop the control;
///  * fully diagonal gate    -> restrict the diagonal by the fixed
///                              bits (possibly down to a scalar);
///  * 1q anti-diagonal (X/Y) -> flip the shard-id mapping bit
///                              (layout.shard_xor) + a scalar.
///
/// Staging guarantees every *non-insular* qubit is local, so these
/// four cases are exhaustive.
///
/// This per-shard form is the *executable specification* of the case
/// split: stage programs (exec/stage_program.cpp, prep_gate) encode the
/// same semantics in hoisted form for the hot path, and the unit tests
/// here plus the stage-program property tests (vs the reference
/// simulator) pin the two against each other. Change them together.

#include <optional>
#include <variant>

#include "exec/layout.h"
#include "ir/gate.h"

namespace atlas::exec {

/// A purely local operation produced by partial evaluation.
struct LocalOp {
  /// Multiply the shard by this scalar (1 if only the gate part acts).
  Amp scale = Amp(1, 0);
  /// The local remainder of the gate, if any: matrix on local qubits.
  std::optional<Gate> gate;
  /// Physical high bit to flip in the layout's shard-id mapping
  /// (anti-diagonal on a non-local qubit); -1 if none. The flip is a
  /// *layout-wide* effect: the caller applies it once, not per shard.
  int flip_phys_bit = -1;
  /// True when the gate reduces to the identity on this shard.
  bool skip = false;
};

/// Evaluates `gate` for `shard` under `layout`. Throws atlas::Error if
/// the gate has a non-insular qubit that is not local (staging bug).
LocalOp partial_evaluate(const Gate& gate, const Layout& layout, int shard);

/// Restriction of a fully diagonal gate matrix to its local qubits:
/// entry v of the result is full(fixed | spread(v, local_pos)) on the
/// diagonal, where `fixed` holds the known values of the non-local
/// qubits in the gate's index space. Shared by per-shard partial
/// evaluation and bind-time stage-program compilation.
Matrix restrict_diagonal(const Matrix& full, const std::vector<int>& local_pos,
                         Index fixed);

}  // namespace atlas::exec
