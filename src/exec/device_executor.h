#pragma once

/// \file device_executor.h
/// The "device" executor backend: EXECUTE over an explicit
/// device-transfer architecture. Where execute_plan() runs kernels
/// directly on the host shard buffers (and, when offloading, merely
/// *meters* the staging traffic), this backend actually stages every
/// shard through a DeviceBuffer before replaying kernels on it:
///
///   host shard --H2D--> staging slot --LAUNCH--> --D2H--> host shard
///
/// scheduled on a device::CommandQueue so the H2D for shard i+1
/// overlaps the kernel replay of shard i (double-buffered slots, one
/// pair per modeled GPU). The numerical results are bit-identical to
/// "inmemory" — same kernels, same order, on memcpy'd data — which is
/// asserted by tests/test_device_executor.cpp and in-bench.
///
/// Per-point execute() pays the full lifecycle every call: arena
/// allocation, queue spin-up, constant-table binds per stage, and
/// teardown. execute_batch() hoists all of it out of the loop — one
/// arena, one queue, and one constant bind per stage for the whole
/// batch, with each point enqueueing only its bind-many delta (the
/// parameter-dependent kernels) — so per-point overhead amortizes to
/// the transfers that genuinely must happen. That amortization is the
/// ≥2x gate bench/bench_offload.cpp enforces.
///
/// CommStats metering matches execute_plan() field for field (remap
/// traffic, kernel_bytes, offload_bytes honoring
/// offload_reload_per_kernel), so modeled-time figures are comparable
/// across backends; the *real* staged bytes appear separately in the
/// device.* metrics and device::buffer_stats().

#include <vector>

#include "exec/backend.h"

namespace atlas::exec {

class DeviceExecutor final : public ExecutorBackend {
 public:
  std::string name() const override { return "device"; }

  /// Refuses clusters whose double-buffered staging arena (two shard
  /// slots per physical GPU) exceeds ClusterConfig::max_staging_bytes
  /// (0 = unlimited) with a typed capacity error.
  void validate(const device::ClusterConfig& cfg) const override;

  ExecutionReport execute(const ExecutionPlan& plan,
                          const device::Cluster& cluster, DistState& state,
                          const ParamEnv& env) const override;

  bool batched_launches(const device::ClusterConfig&) const override {
    return true;
  }

  std::vector<ExecutionReport> execute_batch(
      const ExecutionPlan& plan, const device::Cluster& cluster,
      const std::vector<BatchPoint>& points) const override;
};

/// The staging arena footprint the device backend needs for `cfg`:
/// 2 slots x total GPUs x shard bytes (double buffering).
std::uint64_t device_staging_bytes(const device::ClusterConfig& cfg);

}  // namespace atlas::exec
