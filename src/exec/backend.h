#pragma once

/// \file backend.h
/// The pluggable execution seam: a polymorphic ExecutorBackend over
/// EXECUTE plus a string-keyed registry so external runtimes can plug
/// in without touching core headers. Built-ins:
///
///  * "inmemory" — every shard GPU-resident; refuses clusters
///    configured for DRAM offloading (typed atlas::Error) so capacity
///    mistakes surface at session construction, not mid-run.
///  * "offload"  — offload-aware: shards may outnumber GPUs and swap
///    through them, with the staging traffic metered (Section VII-C).
///  * "device"   — device-style backend (exec/device_executor.h):
///    explicit buffer lifecycle, an async command queue overlapping
///    copies with kernel replay, and batched launches that amortize
///    per-point setup across a sweep or trajectory batch.
///  * "auto"     — "device" when offloading (typed capacity error when
///    the staging arena does not fit either), "inmemory" otherwise.

#include <memory>
#include <string>
#include <vector>

#include "common/registry.h"
#include "exec/executor.h"

namespace atlas::exec {

/// One point of a batched execution: the point's initial state (run in
/// place) and its parameter environment. The pointees must stay alive
/// for the whole execute_batch() call.
struct BatchPoint {
  DistState* state = nullptr;
  ParamEnv env;
};

/// An execution runtime. Implementations run a plan over a distributed
/// state, mutating the state in place and returning timing/traffic.
class ExecutorBackend {
 public:
  virtual ~ExecutorBackend() = default;

  /// The registry key this backend was built for ("inmemory", ...).
  virtual std::string name() const = 0;

  /// Called at Session construction with the cluster shape; throws
  /// atlas::Error when this backend cannot serve it, so capacity
  /// mistakes surface before any state is allocated.
  virtual void validate(const device::ClusterConfig&) const {}

  /// Builds the initial |0...0> state for `plan` (stage 0's partition
  /// as the initial layout). Overridable for backends with bespoke
  /// placement.
  virtual DistState initial_state(const ExecutionPlan& plan,
                                  const device::Cluster& cluster) const {
    return exec::initial_state(plan, cluster);
  }

  /// Runs `plan` over `state` on `cluster`. `env` supplies values for
  /// any symbolic parameters the plan's gates carry (compile-once /
  /// bind-many): a dense slot table for canonical plans, a named
  /// binding for free user symbols, or both; it may be empty for
  /// fully-bound plans. Implementations must thread it through to
  /// stage-program compilation.
  virtual ExecutionReport execute(const ExecutionPlan& plan,
                                  const device::Cluster& cluster,
                                  DistState& state,
                                  const ParamEnv& env) const = 0;

  /// True when this backend amortizes per-point work across a batch on
  /// `cfg`-shaped clusters: Session::sweep()/run_noisy() then route
  /// whole point sets through execute_batch() (one command list per
  /// stage, bind-many deltas) instead of fanning execute() out per
  /// point. Takes the config because delegating backends ("auto")
  /// answer per shape.
  virtual bool batched_launches(const device::ClusterConfig&) const {
    return false;
  }

  /// Runs `plan` once per batch point, mutating each point's state in
  /// place and returning one report per point, in order. Results must
  /// be bit-identical to calling execute() per point — batching is a
  /// scheduling optimization, never a semantic one. The default does
  /// exactly that serial loop; backends returning batched_launches()
  /// override it with a fused schedule.
  virtual std::vector<ExecutionReport> execute_batch(
      const ExecutionPlan& plan, const device::Cluster& cluster,
      const std::vector<BatchPoint>& points) const {
    std::vector<ExecutionReport> reports;
    reports.reserve(points.size());
    for (const BatchPoint& p : points)
      reports.push_back(execute(plan, cluster, *p.state, p.env));
    return reports;
  }

  /// Convenience for named-binding callers (may be null).
  ExecutionReport execute(const ExecutionPlan& plan,
                          const device::Cluster& cluster, DistState& state,
                          const ParamBinding* binding) const {
    ParamEnv env;
    env.named = binding;
    return execute(plan, cluster, state, env);
  }

  /// Convenience for fully-bound plans.
  ExecutionReport execute(const ExecutionPlan& plan,
                          const device::Cluster& cluster,
                          DistState& state) const {
    return execute(plan, cluster, state, ParamEnv{});
  }
};

using ExecutorRegistry = Registry<ExecutorBackend>;

/// The process-wide executor registry. Built-ins ("inmemory",
/// "offload", "auto") are registered on first access; user backends
/// may be added any time with executor_registry().add(name, factory).
ExecutorRegistry& executor_registry();

}  // namespace atlas::exec
