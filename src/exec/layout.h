#pragma once

/// \file layout.h
/// Qubit layout: the mapping between logical circuit qubits and
/// physical bit positions of the distributed state (Definition 1).
/// Physical positions [0, L) index within a shard; [L, L+R) select the
/// GPU within a node; [L+R, n) select the node.
///
/// The layout additionally carries `shard_xor`: anti-diagonal insular
/// gates (X/Y) on non-local qubits are executed *for free* by flipping
/// the mapping between shard ids and physical high-bit values instead
/// of exchanging whole shards (the paper's insular-qubit trick).

#include <vector>

#include "common/bits.h"
#include "common/types.h"
#include "staging/stage.h"

namespace atlas::exec {

struct Layout {
  int num_local = 0;  // L
  /// phys_of_logical[q] = physical position of logical qubit q.
  std::vector<int> phys_of_logical;
  /// logical_of_phys[p] = logical qubit at physical position p.
  std::vector<Qubit> logical_of_phys;
  /// XOR correction on the physical high bits: shard s stores
  /// amplitudes whose physical high bits equal s ^ shard_xor.
  Index shard_xor = 0;

  int num_qubits() const { return static_cast<int>(phys_of_logical.size()); }
  bool is_local(Qubit q) const { return phys_of_logical[q] < num_local; }

  /// The physical-high-bit value of qubit q in shard `shard`
  /// (q must be non-local).
  bool nonlocal_bit(Qubit q, int shard) const {
    const int p = phys_of_logical[q];
    return test_bit((static_cast<Index>(shard) ^ shard_xor),
                    p - num_local);
  }

  /// Identity layout for a machine shape (logical q at physical q).
  static Layout identity(int num_qubits, int num_local);

  /// Layout realizing a stage's qubit partition while moving as few
  /// qubits as possible from `previous`: qubits already in their
  /// target region keep their physical position.
  static Layout for_partition(const staging::QubitPartition& partition,
                              int num_local, int num_regional,
                              const Layout& previous);
};

}  // namespace atlas::exec
