#pragma once

/// \file queries.h
/// Observable queries on a *distributed* state without gathering it:
/// for large qubit counts the full vector never fits in one buffer, so
/// amplitude lookups, probabilities, marginals, and Z-expectations run
/// shard by shard through the current layout (including the shard_xor
/// correction from anti-diagonal insular gates).

#include <vector>

#include "common/rng.h"
#include "exec/dist_state.h"

namespace atlas::exec {

/// The amplitude of one logical basis state.
Amp amplitude(const DistState& state, Index logical_index);

/// |amplitude|^2 of one logical basis state.
double probability(const DistState& state, Index logical_index);

/// Sum of |a|^2 over all shards (~1 for a normalized state).
double norm_sq(const DistState& state);

/// Marginal distribution over logical `qubits` (packed ascending).
std::vector<double> marginal_distribution(const DistState& state,
                                          const std::vector<Qubit>& qubits);

/// <Z_q> on logical qubit q.
double expectation_z(const DistState& state, Qubit q);

/// Everything trajectory aggregation needs from a state, in a single
/// shard pass (the state is consumed right after, so one traversal
/// beats num_qubits marginals): the norm and the *raw* per-qubit Z sums
/// sum_i (+/-)|a_i|^2 — equal to <Z_q> for normalized states, and to
/// tr(|phi><phi| Z_q) for the norm-tracked unravelling's unnormalized
/// trajectories.
struct StateMoments {
  double norm_sq = 0;
  std::vector<double> z;
};
StateMoments state_moments(const DistState& state);

/// Draws `shots` logical basis-state samples.
std::vector<Index> sample(const DistState& state, int shots, Rng& rng);

/// As sample(), from a state of total weight `total_norm` (draws are
/// scaled, so an unnormalized trajectory state samples its *normalized*
/// distribution without copying the state).
std::vector<Index> sample(const DistState& state, int shots, Rng& rng,
                          double total_norm);

}  // namespace atlas::exec
