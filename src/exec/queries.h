#pragma once

/// \file queries.h
/// Observable queries on a *distributed* state without gathering it:
/// for large qubit counts the full vector never fits in one buffer, so
/// amplitude lookups, probabilities, marginals, and Z-expectations run
/// shard by shard through the current layout (including the shard_xor
/// correction from anti-diagonal insular gates).

#include <vector>

#include "common/rng.h"
#include "exec/dist_state.h"

namespace atlas::exec {

/// The amplitude of one logical basis state.
Amp amplitude(const DistState& state, Index logical_index);

/// |amplitude|^2 of one logical basis state.
double probability(const DistState& state, Index logical_index);

/// Sum of |a|^2 over all shards (~1 for a normalized state).
double norm_sq(const DistState& state);

/// Marginal distribution over logical `qubits` (packed ascending).
std::vector<double> marginal_distribution(const DistState& state,
                                          const std::vector<Qubit>& qubits);

/// <Z_q> on logical qubit q.
double expectation_z(const DistState& state, Qubit q);

/// Draws `shots` logical basis-state samples.
std::vector<Index> sample(const DistState& state, int shots, Rng& rng);

}  // namespace atlas::exec
