#include "exec/layout.h"

#include <algorithm>

#include "common/error.h"

namespace atlas::exec {

Layout Layout::identity(int num_qubits, int num_local) {
  Layout l;
  l.num_local = num_local;
  l.phys_of_logical.resize(num_qubits);
  l.logical_of_phys.resize(num_qubits);
  for (int q = 0; q < num_qubits; ++q) {
    l.phys_of_logical[q] = q;
    l.logical_of_phys[q] = q;
  }
  return l;
}

Layout Layout::for_partition(const staging::QubitPartition& partition,
                             int num_local, int num_regional,
                             const Layout& previous) {
  const int n = previous.num_qubits();
  ATLAS_CHECK(static_cast<int>(partition.local.size()) == num_local,
              "partition local size mismatch");
  Layout l;
  l.num_local = num_local;
  l.phys_of_logical.assign(n, -1);
  l.logical_of_phys.assign(n, -1);
  l.shard_xor = 0;  // remapping resets the anti-diagonal correction

  struct Region {
    const std::vector<Qubit>* qubits;
    int begin, end;
  };
  const Region regions[3] = {
      {&partition.local, 0, num_local},
      {&partition.regional, num_local, num_local + num_regional},
      {&partition.global, num_local + num_regional, n},
  };
  // First pass: keep qubits already inside their target region.
  for (const Region& r : regions) {
    for (Qubit q : *r.qubits) {
      const int p = previous.phys_of_logical[q];
      if (p >= r.begin && p < r.end && l.logical_of_phys[p] < 0) {
        l.phys_of_logical[q] = p;
        l.logical_of_phys[p] = q;
      }
    }
  }
  // Second pass: place the remaining qubits at free positions.
  for (const Region& r : regions) {
    int cursor = r.begin;
    for (Qubit q : *r.qubits) {
      if (l.phys_of_logical[q] >= 0) continue;
      while (cursor < r.end && l.logical_of_phys[cursor] >= 0) ++cursor;
      ATLAS_CHECK(cursor < r.end, "region overflow placing qubit " << q);
      l.phys_of_logical[q] = cursor;
      l.logical_of_phys[cursor] = q;
    }
  }
  for (int p = 0; p < n; ++p)
    ATLAS_CHECK(l.logical_of_phys[p] >= 0, "unassigned physical position " << p);
  return l;
}

}  // namespace atlas::exec
