#include "exec/backend.h"

#include "common/error.h"

namespace atlas::exec {
namespace {

class InMemoryBackend final : public ExecutorBackend {
 public:
  std::string name() const override { return "inmemory"; }
  void validate(const device::ClusterConfig& cfg) const override {
    ATLAS_CHECK(!cfg.offloading(),
                "the inmemory executor needs one GPU per shard: "
                    << cfg.shards_per_node() << " shards/node but only "
                    << cfg.gpus_per_node
                    << " gpus/node; use the 'offload' executor");
  }
  ExecutionReport execute(const ExecutionPlan& plan,
                          const device::Cluster& cluster, DistState& state,
                          const ParamEnv& env) const override {
    validate(cluster.config());  // guards direct registry users too
    return execute_plan(plan, cluster, state, env);
  }
};

class OffloadBackend final : public ExecutorBackend {
 public:
  std::string name() const override { return "offload"; }
  ExecutionReport execute(const ExecutionPlan& plan,
                          const device::Cluster& cluster, DistState& state,
                          const ParamEnv& env) const override {
    // execute_plan meters the per-stage swap traffic whenever the
    // cluster holds more shards than GPUs (Section VII-C).
    return execute_plan(plan, cluster, state, env);
  }
};

class AutoBackend final : public ExecutorBackend {
 public:
  std::string name() const override { return "auto"; }
  ExecutionReport execute(const ExecutionPlan& plan,
                          const device::Cluster& cluster, DistState& state,
                          const ParamEnv& env) const override {
    const char* chosen =
        cluster.config().offloading() ? "offload" : "inmemory";
    return executor_registry().create(chosen)->execute(plan, cluster, state,
                                                       env);
  }
};

}  // namespace

ExecutorRegistry& executor_registry() {
  static ExecutorRegistry* registry = [] {
    auto* r = new ExecutorRegistry("executor");
    r->add("inmemory", [] { return std::make_shared<InMemoryBackend>(); });
    r->add("offload", [] { return std::make_shared<OffloadBackend>(); });
    r->add("auto", [] { return std::make_shared<AutoBackend>(); });
    return r;
  }();
  return *registry;
}

}  // namespace atlas::exec
