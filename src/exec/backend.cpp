#include "exec/backend.h"

#include "common/error.h"
#include "exec/device_executor.h"

namespace atlas::exec {
namespace {

class InMemoryBackend final : public ExecutorBackend {
 public:
  std::string name() const override { return "inmemory"; }
  void validate(const device::ClusterConfig& cfg) const override {
    ATLAS_CHECK(!cfg.offloading(),
                "the inmemory executor needs one GPU per shard: "
                    << cfg.shards_per_node() << " shards/node but only "
                    << cfg.gpus_per_node
                    << " gpus/node; use the 'offload' executor");
  }
  ExecutionReport execute(const ExecutionPlan& plan,
                          const device::Cluster& cluster, DistState& state,
                          const ParamEnv& env) const override {
    validate(cluster.config());  // guards direct registry users too
    return execute_plan(plan, cluster, state, env);
  }
};

class OffloadBackend final : public ExecutorBackend {
 public:
  std::string name() const override { return "offload"; }
  ExecutionReport execute(const ExecutionPlan& plan,
                          const device::Cluster& cluster, DistState& state,
                          const ParamEnv& env) const override {
    // execute_plan meters the per-stage swap traffic whenever the
    // cluster holds more shards than GPUs (Section VII-C).
    return execute_plan(plan, cluster, state, env);
  }
};

class AutoBackend final : public ExecutorBackend {
 public:
  std::string name() const override { return "auto"; }

  /// Resolves the backend "auto" stands for under `cfg`: "inmemory"
  /// when every shard fits a GPU, otherwise "device" (batched launches
  /// plus real staging beat the metering-only "offload" backend).
  /// Throws a typed capacity error when no backend is viable —
  /// offloading rules out "inmemory" by definition, so if the device
  /// staging arena does not fit either, there is nothing left to pick.
  static std::shared_ptr<ExecutorBackend> resolve(
      const device::ClusterConfig& cfg) {
    if (!cfg.offloading()) return executor_registry().create("inmemory");
    std::shared_ptr<ExecutorBackend> device =
        executor_registry().create("device");
    try {
      device->validate(cfg);
    } catch (const Error& e) {
      throw Error(
          std::string("no executor backend can serve this cluster shape: "
                      "'inmemory' needs one GPU per shard (") +
              std::to_string(cfg.shards_per_node()) + " shards/node, " +
              std::to_string(cfg.gpus_per_node) +
              " gpus/node) and 'device' refused it: " + e.what(),
          ErrorCode::capacity);
    }
    return device;
  }

  void validate(const device::ClusterConfig& cfg) const override {
    resolve(cfg);  // surfaces the typed capacity error at construction
  }
  bool batched_launches(const device::ClusterConfig& cfg) const override {
    return resolve(cfg)->batched_launches(cfg);
  }
  DistState initial_state(const ExecutionPlan& plan,
                          const device::Cluster& cluster) const override {
    return resolve(cluster.config())->initial_state(plan, cluster);
  }
  ExecutionReport execute(const ExecutionPlan& plan,
                          const device::Cluster& cluster, DistState& state,
                          const ParamEnv& env) const override {
    return resolve(cluster.config())->execute(plan, cluster, state, env);
  }
  std::vector<ExecutionReport> execute_batch(
      const ExecutionPlan& plan, const device::Cluster& cluster,
      const std::vector<BatchPoint>& points) const override {
    return resolve(cluster.config())->execute_batch(plan, cluster, points);
  }
};

}  // namespace

ExecutorRegistry& executor_registry() {
  static ExecutorRegistry* registry = [] {
    auto* r = new ExecutorRegistry("executor");
    r->add("inmemory", [] { return std::make_shared<InMemoryBackend>(); });
    r->add("offload", [] { return std::make_shared<OffloadBackend>(); });
    r->add("device", [] { return std::make_shared<DeviceExecutor>(); });
    r->add("auto", [] { return std::make_shared<AutoBackend>(); });
    return r;
  }();
  return *registry;
}

}  // namespace atlas::exec
