#include "exec/device_executor.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/error.h"
#include "common/timer.h"
#include "device/buffer.h"
#include "device/command_queue.h"
#include "exec/remap.h"
#include "exec/stage_program.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace atlas::exec {
namespace {

/// Everything allocated once per execute()/execute_batch() call: the
/// staging arena, the command queue, and the double-buffered slots.
/// Per-point execution pays this whole setup every call — exactly the
/// fixed cost batching amortizes away.
struct DeviceContext {
  int gpus = 0;  ///< modeled GPUs in use: min(total GPUs, shards)
  Index shard_size = 0;
  std::size_t shard_bytes = 0;
  device::StagingPool arena;
  std::unique_ptr<device::CommandQueue> queue;
  std::vector<device::DeviceBuffer> slots;  ///< 2 per GPU

  DeviceContext(const device::Cluster& cluster, const DistState& state) {
    const auto& cfg = cluster.config();
    gpus = std::min(cfg.total_gpus(), state.num_shards());
    shard_size = state.shard_size();
    shard_bytes = static_cast<std::size_t>(shard_size) * sizeof(Amp);
    queue = std::make_unique<device::CommandQueue>(cluster.pool(), gpus,
                                                   2 * gpus);
    slots.reserve(static_cast<std::size_t>(2 * gpus));
    for (int i = 0; i < 2 * gpus; ++i)
      slots.push_back(arena.allocate(shard_bytes));
  }
};

/// Enqueues one point's replay of `program` over every shard of
/// `state`, pipelined: per round, all H2Ds land first, then all
/// launches, then the *previous* round's D2Hs — so while round r
/// replays out of one slot parity, the worker is already filling the
/// other parity with round r+1's shards. FIFO order keeps each slot's
/// copy/launch/copy dependence correct; the pending-count domains in
/// the queue provide the cross-command waits.
void enqueue_stage(DeviceContext& ctx,
                   std::shared_ptr<const StageProgram> program,
                   DistState& state) {
  const int shards = state.num_shards();
  const int gpus = ctx.gpus;
  const int rounds = (shards + gpus - 1) / gpus;
  const auto slot_of = [&](int r, int g) { return g * 2 + (r & 1); };
  const auto each_gpu = [&](int r, const std::function<void(int, int)>& fn) {
    for (int g = 0; g < gpus; ++g) {
      const int s = r * gpus + g;
      if (s >= shards) break;
      fn(g, s);
    }
  };
  for (int r = 0; r < rounds; ++r) {
    each_gpu(r, [&](int g, int s) {
      ctx.queue->enqueue_h2d(ctx.slots[slot_of(r, g)], state.shard(s).data(),
                             ctx.shard_bytes, slot_of(r, g));
    });
    each_gpu(r, [&](int g, int s) {
      device::DeviceBuffer buf = ctx.slots[slot_of(r, g)];
      ctx.queue->enqueue_launch(
          [program, buf, s, size = ctx.shard_size] {
            std::vector<Amp> scratch;
            run_stage_program(*program, s, buf.data(), size, scratch);
          },
          g, slot_of(r, g));
    });
    if (r > 0) {
      each_gpu(r - 1, [&](int g, int s) {
        ctx.queue->enqueue_d2h(ctx.slots[slot_of(r - 1, g)],
                               state.shard(s).data(), ctx.shard_bytes,
                               slot_of(r - 1, g));
      });
    }
  }
  each_gpu(rounds - 1, [&](int g, int s) {
    ctx.queue->enqueue_d2h(ctx.slots[slot_of(rounds - 1, g)],
                           state.shard(s).data(), ctx.shard_bytes,
                           slot_of(rounds - 1, g));
  });
}

/// The shared plan walk. `points` run stage-major: every point remaps,
/// delta-binds, and enqueues its stage commands while the queue is
/// still replaying earlier points, and one sync per stage closes the
/// pipeline. With a single point this is the honest per-point path —
/// same code, but the caller paid a fresh DeviceContext for it.
std::vector<ExecutionReport> run_on_device(const ExecutionPlan& plan,
                                           const device::Cluster& cluster,
                                           const std::vector<BatchPoint>& points) {
  const auto& cfg = cluster.config();
  ATLAS_CHECK(!points.empty(), "device execution over an empty batch");
  for (const BatchPoint& p : points) {
    ATLAS_CHECK(p.state, "null state in a device batch point");
    ATLAS_CHECK(p.state->num_qubits() == cfg.total_qubits(),
                "state does not match the cluster shape");
  }
  static obs::Counter& runs = obs::counter(obs::names::kExecRuns);
  static obs::Counter& const_uploads =
      obs::counter(obs::names::kDeviceConstUploads);
  runs.add(points.size());

  Timer total_timer;
  DeviceContext ctx(cluster, *points.front().state);
  std::vector<ExecutionReport> reports(points.size());

  std::int64_t stage_index = 0;
  for (const PlannedStage& stage : plan.stages) {
    obs::TraceSpan stage_span(obs::names::kSpanDeviceStage, stage_index);
    Timer stage_timer;
    // First binding of the stage materializes every kernel — the
    // constant-table upload, paid once per context; later points share
    // its parameter-independent kernels and bind only their delta.
    std::shared_ptr<const StageProgram> base;
    for (std::size_t p = 0; p < points.size(); ++p) {
      DistState& state = *points[p].state;
      const ParamEnv& env = points[p].env;
      StageReport sr;

      // SHARD: permute the point's state into the stage's partition
      // (host-side; overlaps the queue draining earlier points).
      {
        Timer t;
        const Layout target = Layout::for_partition(
            stage.partition, cfg.local_qubits, cfg.regional_qubits,
            state.layout());
        sr.stats += remap(state, target, cluster);
        sr.comm_seconds = t.seconds();
      }

      Timer t;
      ATLAS_CHECK(!stage.subcircuit.is_parameterized() || !env.empty(),
                  "execution plan has unbound symbolic parameters ("
                      << stage.subcircuit.symbols().front()
                      << ", ...); pass a ParamBinding");
      obs::TraceSpan bind_span(obs::names::kSpanExecBind, stage_index);
      const std::shared_ptr<const StageSkeleton> skeleton =
          stage.skeleton->get_or_build(state.layout(), [&] {
            return compile_stage_skeleton(stage.subcircuit, stage.kernels,
                                          state.layout());
          });
      auto program = std::make_shared<const StageProgram>(
          bind_stage_program(stage.subcircuit, *skeleton, env, base.get()));
      if (!base) {
        base = program;
        const_uploads.inc();
      }
      bind_span.end();

      // Cost-model metering, field-for-field identical to
      // execute_plan() so modeled times are backend-comparable.
      for (const auto& kernel : stage.kernels.kernels)
        sr.stats.kernel_bytes += static_cast<std::uint64_t>(
            kernel.cost * static_cast<double>(ctx.shard_size) * sizeof(Amp) *
            state.num_shards());
      if (cfg.offloading()) {
        const std::uint64_t reloads =
            plan.offload_reload_per_kernel
                ? std::max<std::uint64_t>(1, stage.kernels.kernels.size())
                : 1;
        sr.stats.offload_bytes += 2ull * reloads * state.num_shards() *
                                  ctx.shard_size * sizeof(Amp);
      }

      enqueue_stage(ctx, std::move(program), state);
      state.layout().shard_xor = base->final_xor;
      sr.compute_seconds = t.seconds();

      reports[p].totals += sr.stats;
      reports[p].comm_seconds += sr.comm_seconds;
      reports[p].compute_seconds += sr.compute_seconds;
      reports[p].stages.push_back(std::move(sr));
    }
    // Stage barrier: every point's shards must be back on the host
    // before the next stage remaps them.
    ctx.queue->sync();
    {
      static obs::Histogram& stage_us =
          obs::histogram(obs::names::kExecStageUs);
      stage_us.observe(stage_timer.seconds() * 1e6);
    }
    stage_span.end();
    ++stage_index;
  }

  const double wall = total_timer.seconds();
  for (ExecutionReport& r : reports) r.wall_seconds = wall;
  return reports;
}

}  // namespace

std::uint64_t device_staging_bytes(const device::ClusterConfig& cfg) {
  const std::uint64_t shard_bytes = static_cast<std::uint64_t>(sizeof(Amp))
                                    << cfg.local_qubits;
  return 2ull * static_cast<std::uint64_t>(cfg.total_gpus()) * shard_bytes;
}

void DeviceExecutor::validate(const device::ClusterConfig& cfg) const {
  if (cfg.max_staging_bytes == 0) return;
  const std::uint64_t need = device_staging_bytes(cfg);
  if (need > cfg.max_staging_bytes) {
    throw Error("the device executor needs a " + std::to_string(need) +
                    "-byte staging arena (2 slots x " +
                    std::to_string(cfg.total_gpus()) + " GPUs x " +
                    std::to_string(std::uint64_t{sizeof(Amp)}
                                   << cfg.local_qubits) +
                    "-byte shards) but the cluster caps staging at " +
                    std::to_string(cfg.max_staging_bytes) + " bytes",
                ErrorCode::capacity);
  }
}

ExecutionReport DeviceExecutor::execute(const ExecutionPlan& plan,
                                        const device::Cluster& cluster,
                                        DistState& state,
                                        const ParamEnv& env) const {
  validate(cluster.config());
  std::vector<BatchPoint> one(1);
  one[0].state = &state;
  one[0].env = env;
  return std::move(run_on_device(plan, cluster, one).front());
}

std::vector<ExecutionReport> DeviceExecutor::execute_batch(
    const ExecutionPlan& plan, const device::Cluster& cluster,
    const std::vector<BatchPoint>& points) const {
  validate(cluster.config());
  if (points.empty()) return {};
  {
    static obs::Counter& batches = obs::counter(obs::names::kDeviceBatches);
    static obs::Histogram& batch_size =
        obs::histogram(obs::names::kDeviceBatchSize);
    batches.inc();
    batch_size.observe(static_cast<double>(points.size()));
  }
  obs::TraceSpan batch_span(obs::names::kSpanDeviceBatch,
                            static_cast<std::int64_t>(points.size()));
  return run_on_device(plan, cluster, points);
}

}  // namespace atlas::exec
