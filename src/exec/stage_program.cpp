#include "exec/stage_program.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/bits.h"
#include "common/error.h"
#include "common/fnv.h"
#include "exec/partial_eval.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "sim/fusion.h"

namespace atlas::exec {
namespace {

std::atomic<std::uint64_t> g_skeleton_compiles{0};
std::atomic<std::uint64_t> g_kernel_binds{0};

using GateSlot = StageSkeleton::GateSlot;
using VariantSkeleton = StageSkeleton::VariantSkeleton;
using KernelSkeleton = StageSkeleton::KernelSkeleton;

/// Shard-invariant *structural* preparation of one gate against the
/// stage layout: its qubits are remapped to physical bit positions and
/// its shard-dependence is reduced to a list of shard-index bits plus
/// how to react to them. Mirrors the case split of partial_evaluate(),
/// evaluated once per stage *structure* — matrix values are filled at
/// bind time.
GateSlot prep_gate(const Gate& g, int gate_index, const Layout& layout,
                   Index xor_before) {
  GateSlot p;
  p.gate = gate_index;
  bool any_nonlocal = false;
  for (Qubit q : g.qubits()) any_nonlocal |= !layout.is_local(q);

  if (!any_nonlocal) {
    p.kind = GateSlot::Case::Local;
    for (Qubit q : g.targets()) p.targets.push_back(layout.phys_of_logical[q]);
    for (Qubit q : g.controls())
      p.controls.push_back(layout.phys_of_logical[q]);
    return p;
  }

  if (g.fully_diagonal()) {
    const int k = g.num_qubits();
    for (int pos = 0; pos < k; ++pos) {
      const Qubit q = g.qubits()[pos];
      if (layout.is_local(q)) {
        p.local_pos.push_back(pos);
        p.targets.push_back(layout.phys_of_logical[q]);
      } else {
        const int sb = layout.phys_of_logical[q] - layout.num_local;
        if (test_bit(xor_before, sb))
          p.xor_adjust |= bit(static_cast<int>(p.decision_bits.size()));
        p.nonlocal_pos.push_back(pos);
        p.decision_bits.push_back(sb);
      }
    }
    p.kind = p.local_pos.empty() ? GateSlot::Case::DiagScale
                                 : GateSlot::Case::DiagRestrict;
    return p;
  }

  if (g.antidiagonal_1q() && !layout.is_local(g.qubits()[0])) {
    p.kind = GateSlot::Case::Antidiag;
    const int sb = layout.phys_of_logical[g.qubits()[0]] - layout.num_local;
    if (test_bit(xor_before, sb)) p.xor_adjust |= bit(0);
    p.decision_bits.push_back(sb);
    return p;
  }

  // Controlled gate with non-local (insular) controls.
  p.kind = GateSlot::Case::Ctrl;
  for (Qubit t : g.targets()) {
    ATLAS_CHECK(layout.is_local(t),
                "non-insular qubit " << t << " of gate " << g.to_string()
                                     << " is not local (staging bug)");
    p.targets.push_back(layout.phys_of_logical[t]);
  }
  for (Qubit c : g.controls()) {
    if (layout.is_local(c)) {
      p.controls.push_back(layout.phys_of_logical[c]);
    } else {
      const int sb = layout.phys_of_logical[c] - layout.num_local;
      if (test_bit(xor_before, sb))
        p.xor_adjust |= bit(static_cast<int>(p.decision_bits.size()));
      p.decision_bits.push_back(sb);
    }
  }
  return p;
}

KernelSkeleton compile_kernel_skeleton(std::vector<GateSlot> slots,
                                       kernelize::KernelType type) {
  KernelSkeleton kp;
  kp.type = type;
  for (const GateSlot& p : slots)
    kp.pattern_bits.insert(kp.pattern_bits.end(), p.decision_bits.begin(),
                           p.decision_bits.end());
  std::sort(kp.pattern_bits.begin(), kp.pattern_bits.end());
  kp.pattern_bits.erase(
      std::unique(kp.pattern_bits.begin(), kp.pattern_bits.end()),
      kp.pattern_bits.end());

  // Pattern position of each shard-index bit.
  const std::vector<int> pos_of_bit = inverse_index(kp.pattern_bits);

  const Index num_variants = Index{1} << kp.pattern_bits.size();
  kp.variants.reserve(num_variants);
  for (Index pattern = 0; pattern < num_variants; ++pattern) {
    VariantSkeleton v;
    for (int si = 0; si < static_cast<int>(slots.size()); ++si) {
      const GateSlot& p = slots[static_cast<std::size_t>(si)];
      const auto decide = [&](std::size_t i) -> bool {
        const int where =
            pos_of_bit[static_cast<std::size_t>(p.decision_bits[i])];
        return test_bit(pattern, where) ^
               test_bit(p.xor_adjust, static_cast<int>(i));
      };
      switch (p.kind) {
        case GateSlot::Case::Local:
          v.ops.push_back({si, 0});
          break;
        case GateSlot::Case::DiagScale: {
          Index fixed = 0;
          for (std::size_t i = 0; i < p.decision_bits.size(); ++i)
            if (decide(i)) fixed |= bit(p.nonlocal_pos[i]);
          v.scales.push_back({si, fixed});
          break;
        }
        case GateSlot::Case::DiagRestrict: {
          Index fixed = 0;
          for (std::size_t i = 0; i < p.decision_bits.size(); ++i)
            if (decide(i)) fixed |= bit(p.nonlocal_pos[i]);
          v.ops.push_back({si, fixed});
          break;
        }
        case GateSlot::Case::Antidiag:
          v.scales.push_back({si, decide(0) ? Index{1} : Index{0}});
          break;
        case GateSlot::Case::Ctrl: {
          bool fires = true;
          for (std::size_t i = 0; i < p.decision_bits.size(); ++i)
            fires &= decide(i);
          if (fires) v.ops.push_back({si, 0});
          break;
        }
      }
    }
    if (!v.ops.empty()) {
      // Matrix-free MatrixOps carry the bit structure the kernel-type
      // lowering needs (fused span / shm gather maps).
      std::vector<MatrixOp> shape;
      shape.reserve(v.ops.size());
      for (const auto& f : v.ops) {
        const GateSlot& p = slots[static_cast<std::size_t>(f.slot)];
        MatrixOp op;
        op.targets = p.targets;
        if (p.kind != GateSlot::Case::DiagRestrict) op.controls = p.controls;
        shape.push_back(std::move(op));
      }
      if (type == kernelize::KernelType::Fusion)
        v.fused_targets = bit_union(shape);
      else
        v.shm = compile_shm_skeleton(shape);
    }
    kp.variants.push_back(std::move(v));
  }
  kp.slots = std::move(slots);
  return kp;
}

/// Matrix values of one slot, resolved against the binding environment.
struct SlotMatrices {
  Matrix m;          ///< Local/Ctrl/Antidiag: target; Diag*: full matrix
  Amp scale_bit0{1.0, 0.0};  ///< Antidiag: u_{10}
  Amp scale_bit1{1.0, 0.0};  ///< Antidiag: u_{01}
};

}  // namespace

std::uint64_t layout_digest(const Layout& layout) {
  Fnv f;
  f.mix(static_cast<std::uint64_t>(layout.num_local));
  f.mix(layout.shard_xor);
  f.mix(layout.phys_of_logical.size());
  for (int p : layout.phys_of_logical) f.mix(static_cast<std::uint64_t>(p));
  return f.value();
}

std::uint64_t stage_skeleton_compiles() {
  return g_skeleton_compiles.load(std::memory_order_relaxed);
}

std::uint64_t stage_kernel_binds() {
  return g_kernel_binds.load(std::memory_order_relaxed);
}

StageSkeleton compile_stage_skeleton(const Circuit& subcircuit,
                                     const kernelize::Kernelization& kernels,
                                     const Layout& layout) {
  g_skeleton_compiles.fetch_add(1, std::memory_order_relaxed);
  StageSkeleton skel;
  skel.layout_digest = layout_digest(layout);
  // Pre-walk the shard_xor trajectory: anti-diagonal insular gates on
  // non-local qubits flip the shard-id mapping, and later gates must
  // observe the flipped mapping. The walk follows the kernel execution
  // order (topologically equivalent to the stage).
  Index cur = layout.shard_xor;
  skel.kernels.reserve(kernels.kernels.size());
  for (const auto& kernel : kernels.kernels) {
    std::vector<GateSlot> slots;
    slots.reserve(kernel.gate_indices.size());
    bool param_dependent = false;
    for (int gi : kernel.gate_indices) {
      const Gate& g = subcircuit.gate(gi);
      param_dependent |= g.is_parameterized();
      slots.push_back(prep_gate(g, gi, layout, cur));
      if (g.antidiagonal_1q() && !layout.is_local(g.qubits()[0]))
        cur ^= bit(layout.phys_of_logical[g.qubits()[0]] - layout.num_local);
    }
    skel.kernels.push_back(
        compile_kernel_skeleton(std::move(slots), kernel.type));
    skel.kernels.back().param_dependent = param_dependent;
  }
  skel.final_xor = cur;
  return skel;
}

StageProgram bind_stage_program(const Circuit& subcircuit,
                                const StageSkeleton& skeleton,
                                const ParamEnv& env,
                                const StageProgram* reuse) {
  ATLAS_CHECK(!reuse || reuse->kernels.size() == skeleton.kernels.size(),
              "bind reuse program was bound from a different skeleton ("
                  << (reuse ? reuse->kernels.size() : 0) << " kernels vs "
                  << skeleton.kernels.size() << ")");
  StageProgram prog;
  prog.final_xor = skeleton.final_xor;
  prog.kernels.reserve(skeleton.kernels.size());
  for (std::size_t ki = 0; ki < skeleton.kernels.size(); ++ki) {
    const KernelSkeleton& ks = skeleton.kernels[ki];
    // The bind-many delta, decided by value: canonical plans carry
    // every angle (constant or swept) as a slot symbol, so the useful
    // reuse test is whether this env resolves the kernel's parameters
    // to the same values the base program was bound under. When it
    // does — always for parameter-free kernels, and for every kernel
    // whose slots the sweep does not vary — the batch shares the first
    // binding's immutable KernelProgram instead of re-materializing
    // fusion products and shm tables per point.
    std::vector<double> bound;
    if (ks.param_dependent) {
      for (const GateSlot& slot : ks.slots)
        for (const Param& param : subcircuit.gate(slot.gate).params())
          bound.push_back(resolve_param(param, env));
    }
    if (reuse && (!ks.param_dependent ||
                  reuse->kernels[ki]->bound_values == bound)) {
      prog.kernels.push_back(reuse->kernels[ki]);
      continue;
    }
    g_kernel_binds.fetch_add(1, std::memory_order_relaxed);
    KernelProgram kp;
    kp.pattern_bits = ks.pattern_bits;
    kp.bound_values = std::move(bound);

    // Materialize each slot's matrix exactly once per bind, shared by
    // every variant that reads it.
    std::vector<SlotMatrices> values(ks.slots.size());
    for (std::size_t si = 0; si < ks.slots.size(); ++si) {
      const GateSlot& p = ks.slots[si];
      const Gate& g = subcircuit.gate(p.gate);
      switch (p.kind) {
        case GateSlot::Case::Local:
        case GateSlot::Case::Ctrl:
          values[si].m = g.target_matrix_resolved(env);
          break;
        case GateSlot::Case::DiagScale:
        case GateSlot::Case::DiagRestrict:
          values[si].m = g.full_matrix_resolved(env);
          break;
        case GateSlot::Case::Antidiag: {
          const Matrix m = g.target_matrix_resolved(env);
          // After the flip the shard represents value (1 - old_bit);
          // its contents pick up u_{new,old}.
          values[si].scale_bit0 = m(1, 0);
          values[si].scale_bit1 = m(0, 1);
          break;
        }
      }
    }

    kp.variants.reserve(ks.variants.size());
    for (const VariantSkeleton& vs : ks.variants) {
      KernelVariant v;
      for (const auto& term : vs.scales) {
        const GateSlot& p = ks.slots[static_cast<std::size_t>(term.slot)];
        if (p.kind == GateSlot::Case::Antidiag) {
          v.scale *= term.sel ? values[static_cast<std::size_t>(term.slot)]
                                    .scale_bit1
                              : values[static_cast<std::size_t>(term.slot)]
                                    .scale_bit0;
        } else {
          const Amp entry = values[static_cast<std::size_t>(term.slot)].m(
              static_cast<int>(term.sel), static_cast<int>(term.sel));
          if (entry != Amp(1, 0)) v.scale *= entry;
        }
      }
      if (!vs.ops.empty()) {
        std::vector<MatrixOp> ops;
        ops.reserve(vs.ops.size());
        for (const auto& f : vs.ops) {
          const GateSlot& p = ks.slots[static_cast<std::size_t>(f.slot)];
          MatrixOp op;
          op.targets = p.targets;
          if (p.kind == GateSlot::Case::DiagRestrict) {
            op.m = restrict_diagonal(
                values[static_cast<std::size_t>(f.slot)].m, p.local_pos,
                f.fixed);
          } else {
            op.m = values[static_cast<std::size_t>(f.slot)].m;
            op.controls = p.controls;
          }
          ops.push_back(std::move(op));
        }
        if (ks.type == kernelize::KernelType::Fusion) {
          MatrixOp fused;
          fused.targets = vs.fused_targets;
          fused.m = fuse_matrix_ops(ops, fused.targets);
          v.fused = prepare_gate(fused);
          v.op = KernelVariant::Op::Fused;
        } else {
          std::vector<const Matrix*> matrices;
          matrices.reserve(ops.size());
          for (const MatrixOp& op : ops) matrices.push_back(&op.m);
          v.shm = bind_shm_program(vs.shm, matrices);
          v.op = KernelVariant::Op::Shm;
        }
      }
      kp.variants.push_back(std::move(v));
    }
    prog.kernels.push_back(std::make_shared<const KernelProgram>(std::move(kp)));
  }
  return prog;
}

std::shared_ptr<const StageSkeleton> StageSkeletonCache::get_or_build(
    const Layout& layout, const std::function<StageSkeleton()>& build) {
  static obs::Counter& hits = obs::counter(obs::names::kSkeletonCacheHits);
  static obs::Counter& misses =
      obs::counter(obs::names::kSkeletonCacheMisses);
  const std::uint64_t digest = layout_digest(layout);
  MutexLock lock(mu_);
  if (!cached_ || cached_->layout_digest != digest) {
    cached_ = std::make_shared<const StageSkeleton>(build());
    misses.inc();
  } else {
    hits.inc();
  }
  return cached_;
}

StageProgram compile_stage_program(const Circuit& subcircuit,
                                   const kernelize::Kernelization& kernels,
                                   const Layout& layout, const ParamEnv& env) {
  return bind_stage_program(
      subcircuit, compile_stage_skeleton(subcircuit, kernels, layout), env);
}

void run_stage_program(const StageProgram& prog, int shard, Amp* data,
                       Index size, std::vector<Amp>& scratch) {
  for (const std::shared_ptr<const KernelProgram>& kpp : prog.kernels) {
    const KernelProgram& kp = *kpp;
    Index pattern = 0;
    for (std::size_t i = 0; i < kp.pattern_bits.size(); ++i)
      if (test_bit(static_cast<Index>(shard), kp.pattern_bits[i]))
        pattern |= bit(static_cast<int>(i));
    const KernelVariant& v = kp.variants[pattern];
    if (v.scale != Amp(1, 0)) scale_buffer(data, size, v.scale);
    switch (v.op) {
      case KernelVariant::Op::None:
        break;
      case KernelVariant::Op::Fused:
        apply_prepared(data, size, v.fused);
        break;
      case KernelVariant::Op::Shm:
        run_shm_program(data, size, v.shm, scratch);
        break;
    }
  }
}

}  // namespace atlas::exec
