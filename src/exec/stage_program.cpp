#include "exec/stage_program.h"

#include <algorithm>
#include <utility>

#include "common/bits.h"
#include "common/error.h"
#include "exec/partial_eval.h"
#include "sim/fusion.h"

namespace atlas::exec {
namespace {

/// Shard-invariant preparation of one gate against the stage layout:
/// the gate's matrix is materialized (parameters resolved through
/// `env`), its qubits are remapped to physical bit positions, and its
/// shard-dependence is reduced to a list of shard-index bits plus how
/// to react to them. Mirrors the case split of partial_evaluate(), but
/// evaluated once per stage instead of once per gate per shard.
struct GatePrep {
  enum class Case { Local, DiagScale, DiagRestrict, Antidiag, Ctrl };
  Case kind = Case::Local;
  /// The shard-independent local remainder: full op for Local/Ctrl,
  /// target positions (matrix filled per variant) for DiagRestrict.
  MatrixOp local;
  /// DiagScale/DiagRestrict: resolved full diagonal matrix and the
  /// gate-index-space positions of its non-local / local qubits.
  Matrix full;
  std::vector<int> nonlocal_pos;
  std::vector<int> local_pos;
  /// Shard-index bits read by this gate (order matches nonlocal_pos or
  /// the non-local control list); bit i of xor_adjust is the shard_xor
  /// correction in effect before this gate at decision_bits[i].
  std::vector<int> decision_bits;
  Index xor_adjust = 0;
  /// Antidiag: scale picked by the xor-adjusted shard bit.
  Amp scale_bit0{1.0, 0.0};
  Amp scale_bit1{1.0, 0.0};
};

GatePrep prep_gate(const Gate& g, const Layout& layout, Index xor_before,
                   const ParamEnv& env) {
  GatePrep p;
  bool any_nonlocal = false;
  for (Qubit q : g.qubits()) any_nonlocal |= !layout.is_local(q);

  if (!any_nonlocal) {
    p.kind = GatePrep::Case::Local;
    p.local.m = g.target_matrix_resolved(env);
    for (Qubit q : g.targets())
      p.local.targets.push_back(layout.phys_of_logical[q]);
    for (Qubit q : g.controls())
      p.local.controls.push_back(layout.phys_of_logical[q]);
    return p;
  }

  if (g.fully_diagonal()) {
    p.full = g.full_matrix_resolved(env);
    const int k = g.num_qubits();
    for (int pos = 0; pos < k; ++pos) {
      const Qubit q = g.qubits()[pos];
      if (layout.is_local(q)) {
        p.local_pos.push_back(pos);
        p.local.targets.push_back(layout.phys_of_logical[q]);
      } else {
        const int sb = layout.phys_of_logical[q] - layout.num_local;
        if (test_bit(xor_before, sb))
          p.xor_adjust |= bit(static_cast<int>(p.decision_bits.size()));
        p.nonlocal_pos.push_back(pos);
        p.decision_bits.push_back(sb);
      }
    }
    p.kind = p.local_pos.empty() ? GatePrep::Case::DiagScale
                                 : GatePrep::Case::DiagRestrict;
    return p;
  }

  if (g.antidiagonal_1q() && !layout.is_local(g.qubits()[0])) {
    p.kind = GatePrep::Case::Antidiag;
    const Matrix m = g.target_matrix_resolved(env);
    // After the flip the shard represents value (1 - old_bit); its
    // contents pick up u_{new,old}.
    p.scale_bit0 = m(1, 0);
    p.scale_bit1 = m(0, 1);
    const int sb =
        layout.phys_of_logical[g.qubits()[0]] - layout.num_local;
    if (test_bit(xor_before, sb)) p.xor_adjust |= bit(0);
    p.decision_bits.push_back(sb);
    return p;
  }

  // Controlled gate with non-local (insular) controls.
  p.kind = GatePrep::Case::Ctrl;
  p.local.m = g.target_matrix_resolved(env);
  for (Qubit t : g.targets()) {
    ATLAS_CHECK(layout.is_local(t),
                "non-insular qubit " << t << " of gate " << g.to_string()
                                     << " is not local (staging bug)");
    p.local.targets.push_back(layout.phys_of_logical[t]);
  }
  for (Qubit c : g.controls()) {
    if (layout.is_local(c)) {
      p.local.controls.push_back(layout.phys_of_logical[c]);
    } else {
      const int sb = layout.phys_of_logical[c] - layout.num_local;
      if (test_bit(xor_before, sb))
        p.xor_adjust |= bit(static_cast<int>(p.decision_bits.size()));
      p.decision_bits.push_back(sb);
    }
  }
  return p;
}

KernelProgram compile_kernel(const std::vector<GatePrep>& preps,
                             kernelize::KernelType type) {
  KernelProgram kp;
  for (const GatePrep& p : preps)
    kp.pattern_bits.insert(kp.pattern_bits.end(), p.decision_bits.begin(),
                           p.decision_bits.end());
  std::sort(kp.pattern_bits.begin(), kp.pattern_bits.end());
  kp.pattern_bits.erase(
      std::unique(kp.pattern_bits.begin(), kp.pattern_bits.end()),
      kp.pattern_bits.end());

  // Pattern position of each shard-index bit.
  const std::vector<int> pos_of_bit = inverse_index(kp.pattern_bits);

  const Index num_variants = Index{1} << kp.pattern_bits.size();
  kp.variants.reserve(num_variants);
  for (Index pattern = 0; pattern < num_variants; ++pattern) {
    KernelVariant v;
    std::vector<MatrixOp> ops;
    for (const GatePrep& p : preps) {
      const auto decide = [&](std::size_t i) -> bool {
        const int where =
            pos_of_bit[static_cast<std::size_t>(p.decision_bits[i])];
        return test_bit(pattern, where) ^
               test_bit(p.xor_adjust, static_cast<int>(i));
      };
      switch (p.kind) {
        case GatePrep::Case::Local:
          ops.push_back(p.local);
          break;
        case GatePrep::Case::DiagScale: {
          Index fixed = 0;
          for (std::size_t i = 0; i < p.decision_bits.size(); ++i)
            if (decide(i)) fixed |= bit(p.nonlocal_pos[i]);
          const Amp entry =
              p.full(static_cast<int>(fixed), static_cast<int>(fixed));
          if (entry != Amp(1, 0)) v.scale *= entry;
          break;
        }
        case GatePrep::Case::DiagRestrict: {
          Index fixed = 0;
          for (std::size_t i = 0; i < p.decision_bits.size(); ++i)
            if (decide(i)) fixed |= bit(p.nonlocal_pos[i]);
          MatrixOp op = p.local;
          op.m = restrict_diagonal(p.full, p.local_pos, fixed);
          ops.push_back(std::move(op));
          break;
        }
        case GatePrep::Case::Antidiag:
          v.scale *= decide(0) ? p.scale_bit1 : p.scale_bit0;
          break;
        case GatePrep::Case::Ctrl: {
          bool fires = true;
          for (std::size_t i = 0; i < p.decision_bits.size(); ++i)
            fires &= decide(i);
          if (fires) ops.push_back(p.local);
          break;
        }
      }
    }
    if (!ops.empty()) {
      if (type == kernelize::KernelType::Fusion) {
        MatrixOp fused;
        fused.targets = bit_union(ops);
        fused.m = fuse_matrix_ops(ops, fused.targets);
        v.fused = prepare_gate(fused);
        v.op = KernelVariant::Op::Fused;
      } else {
        v.shm = compile_shm_program(ops);
        v.op = KernelVariant::Op::Shm;
      }
    }
    kp.variants.push_back(std::move(v));
  }
  return kp;
}

}  // namespace

StageProgram compile_stage_program(const Circuit& subcircuit,
                                   const kernelize::Kernelization& kernels,
                                   const Layout& layout,
                                   const ParamEnv& env) {
  StageProgram prog;
  // Pre-walk the shard_xor trajectory: anti-diagonal insular gates on
  // non-local qubits flip the shard-id mapping, and later gates must
  // observe the flipped mapping. The walk follows the kernel execution
  // order (topologically equivalent to the stage).
  Index cur = layout.shard_xor;
  prog.kernels.reserve(kernels.kernels.size());
  for (const auto& kernel : kernels.kernels) {
    std::vector<GatePrep> preps;
    preps.reserve(kernel.gate_indices.size());
    for (int gi : kernel.gate_indices) {
      const Gate& g = subcircuit.gate(gi);
      preps.push_back(prep_gate(g, layout, cur, env));
      if (g.antidiagonal_1q() && !layout.is_local(g.qubits()[0]))
        cur ^= bit(layout.phys_of_logical[g.qubits()[0]] - layout.num_local);
    }
    prog.kernels.push_back(compile_kernel(preps, kernel.type));
  }
  prog.final_xor = cur;
  return prog;
}

void run_stage_program(const StageProgram& prog, int shard, Amp* data,
                       Index size, std::vector<Amp>& scratch) {
  for (const KernelProgram& kp : prog.kernels) {
    Index pattern = 0;
    for (std::size_t i = 0; i < kp.pattern_bits.size(); ++i)
      if (test_bit(static_cast<Index>(shard), kp.pattern_bits[i]))
        pattern |= bit(static_cast<int>(i));
    const KernelVariant& v = kp.variants[pattern];
    if (v.scale != Amp(1, 0)) scale_buffer(data, size, v.scale);
    switch (v.op) {
      case KernelVariant::Op::None:
        break;
      case KernelVariant::Op::Fused:
        apply_prepared(data, size, v.fused);
        break;
      case KernelVariant::Op::Shm:
        run_shm_program(data, size, v.shm, scratch);
        break;
    }
  }
}

}  // namespace atlas::exec
