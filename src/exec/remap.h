#pragma once

/// \file remap.h
/// State repartitioning between stages (the SHARD step of Algorithm 1):
/// an all-to-all exchange that realizes a new qubit layout. The move
/// is a bit permutation of storage indices; contiguous runs whose low
/// bits are fixed by the permutation are moved with single block
/// copies, and every byte is metered by link class.

#include "device/cluster.h"
#include "exec/dist_state.h"

namespace atlas::exec {

/// Permutes `state` into `new_layout`. Returns the communication
/// metering of the exchange.
device::CommStats remap(DistState& state, const Layout& new_layout,
                        const device::Cluster& cluster);

}  // namespace atlas::exec
