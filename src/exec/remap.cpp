#include "exec/remap.h"

#include <atomic>
#include <cstring>
#include <mutex>

#include "common/error.h"

namespace atlas::exec {

device::CommStats remap(DistState& state, const Layout& new_layout,
                        const device::Cluster& cluster) {
  const Layout& old_layout = state.layout();
  const int n = state.num_qubits();
  const int L = new_layout.num_local;
  ATLAS_CHECK(old_layout.num_local == L,
              "remap cannot change the local qubit count");
  ATLAS_CHECK(new_layout.num_qubits() == n, "layout size mismatch");

  // Composite map: dst storage index -> src storage index.
  //   src = spread_bits(dst, bitmap) ^ xor_const
  // where bitmap[p] = old physical position of the logical qubit that
  // the new layout places at physical position p, and xor_const folds
  // both layouts' shard_xor corrections through the permutation.
  std::vector<int> bitmap(n);
  for (int p = 0; p < n; ++p)
    bitmap[p] = old_layout.phys_of_logical[new_layout.logical_of_phys[p]];
  Index xor_const = old_layout.shard_xor << L;
  {
    const Index a = new_layout.shard_xor << L;  // pre-permutation flips
    for (int p = 0; p < n; ++p)
      if (test_bit(a, p)) xor_const ^= bit(bitmap[p]);
  }

  device::CommStats stats;
  // Identity fast path: nothing moves.
  bool identity = xor_const == 0;
  for (int p = 0; p < n && identity; ++p) identity = bitmap[p] == p;
  if (identity) {
    state.layout() = new_layout;
    return stats;
  }

  // Block size: low bits fixed by the map move as contiguous runs.
  int block_bits = 0;
  while (block_bits < L && bitmap[block_bits] == block_bits &&
         !test_bit(xor_const, block_bits))
    ++block_bits;
  const Index block = Index{1} << block_bits;
  const Index shard_size = state.shard_size();
  const int num_shards = state.num_shards();

  std::vector<std::vector<Amp>> dst(
      num_shards, std::vector<Amp>(shard_size));
  const auto& src_shards = state.shards();

  // Per-shard byte accounting, merged after the parallel loop.
  std::vector<std::uint64_t> intra_gpu(num_shards, 0), intra_node(num_shards, 0),
      inter_node(num_shards, 0);

  cluster.pool().parallel_for(
      static_cast<std::size_t>(num_shards), [&](std::size_t s1) {
        const Index base = static_cast<Index>(s1) << L;
        for (Index o = 0; o < shard_size; o += block) {
          const Index d = base | o;
          Index src = xor_const;
          for (int p = block_bits; p < n; ++p)
            if (test_bit(d, p)) src ^= bit(bitmap[p]);
          src |= d & (block - 1);
          const int s0 = static_cast<int>(src >> L);
          std::memcpy(dst[s1].data() + o,
                      src_shards[s0].data() + (src & (shard_size - 1)),
                      block * sizeof(Amp));
          const std::uint64_t bytes = block * sizeof(Amp);
          if (s0 == static_cast<int>(s1)) {
            intra_gpu[s1] += bytes;
          } else if (cluster.node_of_shard(s0) ==
                     cluster.node_of_shard(static_cast<int>(s1))) {
            intra_node[s1] += bytes;
          } else {
            inter_node[s1] += bytes;
          }
        }
      });

  for (int s = 0; s < num_shards; ++s) {
    stats.intra_gpu_bytes += intra_gpu[s];
    stats.intra_node_bytes += intra_node[s];
    stats.inter_node_bytes += inter_node[s];
  }
  if (stats.intra_node_bytes + stats.inter_node_bytes > 0)
    stats.alltoall_rounds = 1;

  state.shards() = std::move(dst);
  state.layout() = new_layout;
  return stats;
}

}  // namespace atlas::exec
