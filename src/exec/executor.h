#pragma once

/// \file executor.h
/// The EXECUTE algorithm (paper Algorithm 1): runs a partitioned
/// circuit — stages of kernels — over the distributed state, doing the
/// all-to-all reshard between stages and launching each stage's
/// kernels on every shard in parallel. Supports DRAM offloading: when
/// the cluster has fewer GPUs than shards, shards are swapped through
/// the GPUs and the staging traffic is metered.

#include <memory>
#include <vector>

#include "device/cluster.h"
#include "exec/dist_state.h"
#include "exec/stage_program.h"
#include "ir/circuit.h"
#include "kernelize/kernel.h"
#include "staging/stage.h"

namespace atlas::exec {

/// One stage ready for execution: the stage's gates as a subcircuit
/// (indices into the original circuit retained) plus its kernelization
/// and qubit partition.
struct PlannedStage {
  Circuit subcircuit;
  std::vector<int> original_indices;
  staging::QubitPartition partition;
  kernelize::Kernelization kernels;
  /// Lazily-built binding-independent stage skeleton (pattern bits,
  /// fired-gate sets, shm actives/offsets, fused spans), shared by
  /// every run of the owning plan: sweeps and trajectory batches only
  /// re-fill matrix values per point. Copies of a PlannedStage share
  /// the cache — plans are immutable once built, so that is sound.
  mutable std::shared_ptr<StageSkeletonCache> skeleton =
      std::make_shared<StageSkeletonCache>();
};

struct ExecutionPlan {
  std::vector<PlannedStage> stages;
  double staging_comm_cost = 0;   // Eq. (2) value from the stager
  double kernel_cost_total = 0;   // sum of kernel cost-model values
  /// When offloading, reload every shard once per *kernel* instead of
  /// once per stage (models QDAO-style block scheduling; Atlas plans
  /// always swap once per stage).
  bool offload_reload_per_kernel = false;
};

struct StageReport {
  double comm_seconds = 0;     // wall time in remap
  double compute_seconds = 0;  // wall time in kernels
  device::CommStats stats;
};

struct ExecutionReport {
  std::vector<StageReport> stages;
  device::CommStats totals;
  double wall_seconds = 0;
  double comm_seconds = 0;
  double compute_seconds = 0;

  /// Modeled end-to-end seconds on the target machine.
  double modeled_seconds(const device::CommCostModel& m, int gpus,
                         int nodes) const;
};

/// Executes `plan` on `cluster` over `state`. Plans hold only gate
/// *structure*; each stage is compiled once per run into a StageProgram
/// (matrices materialized against `env`, gates localized, kernels
/// lowered) and replayed across shards, so a plan whose gates carry
/// symbolic parameters (compile-once / bind-many) executes by resolving
/// them against env.slots (dense slot table, canonical plans) or
/// env.named (free user symbols). Passing a plan with unbound symbols
/// and an empty env throws atlas::Error.
ExecutionReport execute_plan(const ExecutionPlan& plan,
                             const device::Cluster& cluster, DistState& state,
                             const ParamEnv& env = {});

/// Compatibility overload: named-binding-only environments.
ExecutionReport execute_plan(const ExecutionPlan& plan,
                             const device::Cluster& cluster, DistState& state,
                             const ParamBinding* binding);

/// Convenience: build the initial distributed state for a plan (stage
/// 0's partition as the initial layout, which is free — Eq. (2) only
/// charges transitions).
DistState initial_state(const ExecutionPlan& plan,
                        const device::Cluster& cluster);

/// Approximate heap footprint of a retained plan in bytes: gate
/// storage (qubit/param vectors, Unitary matrices), stage partitions,
/// and kernel index lists. Deliberately an estimate — it skips
/// allocator overhead and the lazily-built stage skeletons (which are
/// bounded by the same structure) — but it is stable for equal plans,
/// which is what cache-memory accounting needs.
std::size_t approx_resident_bytes(const ExecutionPlan& plan);

}  // namespace atlas::exec
