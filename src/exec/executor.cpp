#include "exec/executor.h"

#include <algorithm>

#include "common/error.h"
#include "common/timer.h"
#include "exec/remap.h"
#include "exec/stage_program.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace atlas::exec {

double ExecutionReport::modeled_seconds(const device::CommCostModel& m,
                                        int gpus, int nodes) const {
  return totals.modeled_comm_seconds(m, gpus, nodes) +
         totals.modeled_compute_seconds(m, gpus);
}

DistState initial_state(const ExecutionPlan& plan,
                        const device::Cluster& cluster) {
  const auto& cfg = cluster.config();
  ATLAS_CHECK(!plan.stages.empty(), "empty execution plan");
  const Layout layout = Layout::for_partition(
      plan.stages.front().partition, cfg.local_qubits, cfg.regional_qubits,
      Layout::identity(cfg.total_qubits(), cfg.local_qubits));
  return DistState::zero_state(layout);
}

ExecutionReport execute_plan(const ExecutionPlan& plan,
                             const device::Cluster& cluster, DistState& state,
                             const ParamEnv& env) {
  const auto& cfg = cluster.config();
  ATLAS_CHECK(state.num_qubits() == cfg.total_qubits(),
              "state does not match the cluster shape");
  ExecutionReport report;
  Timer total_timer;
  {
    static obs::Counter& runs = obs::counter(obs::names::kExecRuns);
    runs.inc();
  }

  std::int64_t stage_index = 0;
  for (const PlannedStage& stage : plan.stages) {
    StageReport sr;
    obs::TraceSpan stage_span(obs::names::kSpanExecStage, stage_index);
    Timer stage_timer;

    // SHARD: permute the state into the stage's partition.
    {
      Timer t;
      const Layout target = Layout::for_partition(
          stage.partition, cfg.local_qubits, cfg.regional_qubits,
          state.layout());
      sr.stats += remap(state, target, cluster);
      sr.comm_seconds = t.seconds();
    }

    // Kernels: compile the stage once per run — bind-time parameter
    // materialization (dense slot table, no subcircuit copy), gate
    // localization, fusion products, and shm gather maps are all
    // shard-invariant — then replay the program on every shard, where
    // only the cheap non-local-bit decisions remain.
    {
      Timer t;
      ATLAS_CHECK(!stage.subcircuit.is_parameterized() || !env.empty(),
                  "execution plan has unbound symbolic parameters ("
                      << stage.subcircuit.symbols().front()
                      << ", ...); pass a ParamBinding");
      // The binding-independent skeleton is cached on the plan: repeat
      // runs (sweep points, noise trajectories) only re-fill matrix
      // values.
      obs::TraceSpan bind_span(obs::names::kSpanExecBind, stage_index);
      const std::shared_ptr<const StageSkeleton> skeleton =
          stage.skeleton->get_or_build(state.layout(), [&] {
            return compile_stage_skeleton(stage.subcircuit, stage.kernels,
                                          state.layout());
          });
      const StageProgram program =
          bind_stage_program(stage.subcircuit, *skeleton, env);
      bind_span.end();
      const Index shard_size = state.shard_size();

      // Kernel cost-model units -> bytes streamed (for modeled time).
      for (const auto& kernel : stage.kernels.kernels)
        sr.stats.kernel_bytes += static_cast<std::uint64_t>(
            kernel.cost * static_cast<double>(shard_size) * sizeof(Amp) *
            state.num_shards());

      cluster.pool().parallel_for(
          static_cast<std::size_t>(state.num_shards()), [&](std::size_t s) {
            obs::TraceSpan shard_span(obs::names::kSpanExecShard,
                                      static_cast<std::int64_t>(s));
            std::vector<Amp> scratch;
            run_stage_program(program, static_cast<int>(s),
                              state.shard(static_cast<int>(s)).data(),
                              shard_size, scratch);
          });
      state.layout().shard_xor = program.final_xor;

      // DRAM offloading: each resident shard is staged in and out of a
      // GPU once per stage (Atlas), or once per kernel for baselines
      // without stage-level planning.
      if (cfg.offloading()) {
        const std::uint64_t reloads =
            plan.offload_reload_per_kernel
                ? std::max<std::uint64_t>(1, stage.kernels.kernels.size())
                : 1;
        sr.stats.offload_bytes +=
            2ull * reloads * state.num_shards() * shard_size * sizeof(Amp);
      }
      sr.compute_seconds = t.seconds();
    }

    stage_span.end();
    {
      static obs::Histogram& stage_us =
          obs::histogram(obs::names::kExecStageUs);
      stage_us.observe(stage_timer.seconds() * 1e6);
    }
    report.totals += sr.stats;
    report.comm_seconds += sr.comm_seconds;
    report.compute_seconds += sr.compute_seconds;
    report.stages.push_back(std::move(sr));
    ++stage_index;
  }
  report.wall_seconds = total_timer.seconds();
  return report;
}

ExecutionReport execute_plan(const ExecutionPlan& plan,
                             const device::Cluster& cluster, DistState& state,
                             const ParamBinding* binding) {
  ParamEnv env;
  env.named = binding;
  return execute_plan(plan, cluster, state, env);
}

std::size_t approx_resident_bytes(const ExecutionPlan& plan) {
  std::size_t bytes = sizeof(ExecutionPlan);
  for (const PlannedStage& stage : plan.stages) {
    bytes += sizeof(PlannedStage);
    for (const Gate& g : stage.subcircuit.gates()) {
      bytes += sizeof(Gate);
      bytes += g.qubits().size() * sizeof(Qubit);
      bytes += g.params().size() * sizeof(Param);
      if (g.kind() == GateKind::Unitary) {
        // A Unitary's explicit target matrix: 2^T x 2^T complex doubles.
        bytes += (sizeof(Amp) << (2 * g.num_targets()));
      }
    }
    bytes += stage.original_indices.size() * sizeof(int);
    bytes += (stage.partition.local.size() + stage.partition.regional.size() +
              stage.partition.global.size()) *
             sizeof(Qubit);
    for (const kernelize::Kernel& k : stage.kernels.kernels) {
      bytes += sizeof(kernelize::Kernel);
      bytes += k.gate_indices.size() * sizeof(int);
      bytes += k.qubits.size() * sizeof(Qubit);
    }
  }
  return bytes;
}

}  // namespace atlas::exec
