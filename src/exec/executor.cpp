#include "exec/executor.h"

#include <algorithm>

#include "common/error.h"
#include "common/timer.h"
#include "exec/partial_eval.h"
#include "exec/remap.h"
#include "sim/apply.h"
#include "sim/fusion.h"
#include "sim/shm_executor.h"

namespace atlas::exec {
namespace {

/// Pre-walked per-gate layout context for one stage: anti-diagonal
/// insular gates on non-local qubits flip the shard-id mapping, and
/// later gates must observe the flipped mapping. The walk follows the
/// kernel execution order (topologically equivalent to the stage).
struct StageScript {
  /// Flattened (kernel, gate) execution order with the shard_xor in
  /// effect before each gate.
  std::vector<Index> xor_before;   // indexed by flattened position
  Index final_xor = 0;
};

StageScript prewalk(const Circuit& circuit,
                    const kernelize::Kernelization& kernels,
                    const Layout& layout) {
  StageScript script;
  Index cur = layout.shard_xor;
  for (const auto& kernel : kernels.kernels) {
    for (int gi : kernel.gate_indices) {
      script.xor_before.push_back(cur);
      const Gate& g = circuit.gate(gi);
      if (g.antidiagonal_1q() && !layout.is_local(g.qubits()[0]))
        cur ^= bit(layout.phys_of_logical[g.qubits()[0]] - layout.num_local);
    }
  }
  script.final_xor = cur;
  return script;
}

/// Executes one kernel on one shard. `circuit` is the stage's (bound)
/// subcircuit; `flat_base` is the kernel's first gate position in the
/// stage's flattened order.
void run_kernel_on_shard(const Circuit& circuit,
                         const kernelize::Kernel& kernel,
                         const StageScript& script, std::size_t flat_base,
                         Layout layout, int shard, Amp* data, Index size) {
  // Collect the localized operations for this shard.
  std::vector<Gate> local_gates;  // qubit ids are *bit positions*
  Amp scale(1, 0);
  for (std::size_t j = 0; j < kernel.gate_indices.size(); ++j) {
    layout.shard_xor = script.xor_before[flat_base + j];
    const Gate& g = circuit.gate(kernel.gate_indices[j]);
    LocalOp op = partial_evaluate(g, layout, shard);
    if (op.skip) continue;
    scale *= op.scale;
    if (!op.gate) continue;
    // Remap logical qubits to physical bit positions.
    std::vector<Qubit> tbits, cbits;
    for (Qubit q : op.gate->targets())
      tbits.push_back(layout.phys_of_logical[q]);
    for (Qubit q : op.gate->controls())
      cbits.push_back(layout.phys_of_logical[q]);
    local_gates.push_back(Gate::controlled_unitary(
        std::move(cbits), std::move(tbits), op.gate->target_matrix()));
  }

  if (scale != Amp(1, 0)) scale_buffer(data, size, scale);
  if (local_gates.empty()) return;

  std::vector<int> identity_map(layout.num_qubits());
  for (int i = 0; i < layout.num_qubits(); ++i) identity_map[i] = i;

  if (kernel.type == kernelize::KernelType::Fusion) {
    // Fuse the localized gates into one matrix over their bit span.
    const Gate fused = fuse_to_gate(local_gates);
    std::vector<int> targets;
    for (Qubit b : fused.targets()) targets.push_back(b);
    apply_matrix(data, size, targets, fused.target_matrix());
  } else {
    run_shared_memory_kernel(data, size, local_gates, identity_map);
  }
}

}  // namespace

double ExecutionReport::modeled_seconds(const device::CommCostModel& m,
                                        int gpus, int nodes) const {
  return totals.modeled_comm_seconds(m, gpus, nodes) +
         totals.modeled_compute_seconds(m, gpus);
}

DistState initial_state(const ExecutionPlan& plan,
                        const device::Cluster& cluster) {
  const auto& cfg = cluster.config();
  ATLAS_CHECK(!plan.stages.empty(), "empty execution plan");
  const Layout layout = Layout::for_partition(
      plan.stages.front().partition, cfg.local_qubits, cfg.regional_qubits,
      Layout::identity(cfg.total_qubits(), cfg.local_qubits));
  return DistState::zero_state(layout);
}

ExecutionReport execute_plan(const ExecutionPlan& plan,
                             const device::Cluster& cluster, DistState& state,
                             const ParamBinding* binding) {
  const auto& cfg = cluster.config();
  ATLAS_CHECK(state.num_qubits() == cfg.total_qubits(),
              "state does not match the cluster shape");
  ExecutionReport report;
  Timer total_timer;

  for (const PlannedStage& stage : plan.stages) {
    StageReport sr;

    // SHARD: permute the state into the stage's partition.
    {
      Timer t;
      const Layout target = Layout::for_partition(
          stage.partition, cfg.local_qubits, cfg.regional_qubits,
          state.layout());
      sr.stats += remap(state, target, cluster);
      sr.comm_seconds = t.seconds();
    }

    // Kernels: every shard runs the stage's kernel list. Bind-time
    // materialization: the plan carries parameter *structure* only;
    // symbolic parameters are evaluated here, once per stage per run,
    // so one compiled plan serves every binding of a sweep.
    {
      Timer t;
      const bool symbolic = stage.subcircuit.is_parameterized();
      ATLAS_CHECK(!symbolic || binding,
                  "execution plan has unbound symbolic parameters ("
                      << stage.subcircuit.symbols().front()
                      << ", ...); pass a ParamBinding");
      const Circuit bound_storage =
          symbolic ? stage.subcircuit.bind(*binding) : Circuit();
      const Circuit& subcircuit = symbolic ? bound_storage : stage.subcircuit;

      const StageScript script =
          prewalk(subcircuit, stage.kernels, state.layout());
      const Layout layout_snapshot = state.layout();
      const Index shard_size = state.shard_size();

      // Kernel cost-model units -> bytes streamed (for modeled time).
      for (const auto& kernel : stage.kernels.kernels)
        sr.stats.kernel_bytes += static_cast<std::uint64_t>(
            kernel.cost * static_cast<double>(shard_size) * sizeof(Amp) *
            state.num_shards());

      cluster.pool().parallel_for(
          static_cast<std::size_t>(state.num_shards()), [&](std::size_t s) {
            std::size_t flat = 0;
            for (const auto& kernel : stage.kernels.kernels) {
              run_kernel_on_shard(subcircuit, kernel, script, flat,
                                  layout_snapshot, static_cast<int>(s),
                                  state.shard(static_cast<int>(s)).data(),
                                  shard_size);
              flat += kernel.gate_indices.size();
            }
          });
      state.layout().shard_xor = script.final_xor;

      // DRAM offloading: each resident shard is staged in and out of a
      // GPU once per stage (Atlas), or once per kernel for baselines
      // without stage-level planning.
      if (cfg.offloading()) {
        const std::uint64_t reloads =
            plan.offload_reload_per_kernel
                ? std::max<std::uint64_t>(1, stage.kernels.kernels.size())
                : 1;
        sr.stats.offload_bytes +=
            2ull * reloads * state.num_shards() * shard_size * sizeof(Amp);
      }
      sr.compute_seconds = t.seconds();
    }

    report.totals += sr.stats;
    report.comm_seconds += sr.comm_seconds;
    report.compute_seconds += sr.compute_seconds;
    report.stages.push_back(std::move(sr));
  }
  report.wall_seconds = total_timer.seconds();
  return report;
}

}  // namespace atlas::exec
