#include "exec/queries.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/error.h"

namespace atlas::exec {
namespace {

/// Logical basis index -> (shard, offset) under the state's layout.
std::pair<int, Index> locate(const DistState& state, Index logical_index) {
  const Layout& l = state.layout();
  Index phys = 0;
  for (int q = 0; q < l.num_qubits(); ++q)
    if (test_bit(logical_index, q)) phys |= bit(l.phys_of_logical[q]);
  const Index offset = phys & (state.shard_size() - 1);
  const Index high = phys >> l.num_local;
  return {static_cast<int>(high ^ l.shard_xor), offset};
}

/// Logical index of the amplitude stored at (shard, offset).
Index logical_of(const DistState& state, int shard, Index offset) {
  const Layout& l = state.layout();
  const Index phys =
      ((static_cast<Index>(shard) ^ l.shard_xor) << l.num_local) | offset;
  Index logical = 0;
  for (int p = 0; p < l.num_qubits(); ++p)
    if (test_bit(phys, p)) logical |= bit(l.logical_of_phys[p]);
  return logical;
}

}  // namespace

Amp amplitude(const DistState& state, Index logical_index) {
  ATLAS_CHECK(logical_index < (Index{1} << state.num_qubits()),
              "basis state out of range");
  const auto [s, o] = locate(state, logical_index);
  return state.shard(s)[o];
}

double probability(const DistState& state, Index logical_index) {
  return std::norm(amplitude(state, logical_index));
}

double norm_sq(const DistState& state) {
  double total = 0;
  for (int s = 0; s < state.num_shards(); ++s)
    for (const Amp& a : state.shard(s)) total += std::norm(a);
  return total;
}

std::vector<double> marginal_distribution(const DistState& state,
                                          const std::vector<Qubit>& qubits) {
  const Layout& l = state.layout();
  for (Qubit q : qubits)
    ATLAS_CHECK(q >= 0 && q < state.num_qubits(), "qubit out of range");
  std::vector<double> dist(Index{1} << qubits.size(), 0.0);
  // Split the queried qubits into local (vary inside the shard) and
  // non-local (fixed per shard) so the inner loop touches each
  // amplitude once with cheap index arithmetic.
  std::vector<int> local_pos, nonlocal_out;
  std::vector<int> local_out;
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    if (l.is_local(qubits[i])) {
      local_pos.push_back(l.phys_of_logical[qubits[i]]);
      local_out.push_back(static_cast<int>(i));
    } else {
      nonlocal_out.push_back(static_cast<int>(i));
    }
  }
  for (int s = 0; s < state.num_shards(); ++s) {
    Index base_out = 0;
    for (std::size_t j = 0; j < nonlocal_out.size(); ++j) {
      const Qubit q = qubits[nonlocal_out[j]];
      if (l.nonlocal_bit(q, s)) base_out |= bit(nonlocal_out[j]);
    }
    const auto& shard = state.shard(s);
    for (Index o = 0; o < state.shard_size(); ++o) {
      const double p = std::norm(shard[o]);
      if (p == 0.0) continue;
      Index out = base_out;
      for (std::size_t j = 0; j < local_pos.size(); ++j)
        if (test_bit(o, local_pos[j])) out |= bit(local_out[j]);
      dist[out] += p;
    }
  }
  return dist;
}

double expectation_z(const DistState& state, Qubit q) {
  const auto dist = marginal_distribution(state, {q});
  return dist[0] - dist[1];
}

std::vector<Index> sample(const DistState& state, int shots, Rng& rng) {
  std::vector<double> draws(shots);
  for (auto& d : draws) d = rng.uniform();
  std::sort(draws.begin(), draws.end());
  std::vector<Index> out(shots);
  double cum = 0;
  std::size_t k = 0;
  Index last = 0;
  for (int s = 0; s < state.num_shards() && k < draws.size(); ++s) {
    const auto& shard = state.shard(s);
    for (Index o = 0; o < state.shard_size() && k < draws.size(); ++o) {
      cum += std::norm(shard[o]);
      last = logical_of(state, s, o);
      while (k < draws.size() && draws[k] < cum) out[k++] = last;
    }
  }
  while (k < draws.size()) out[k++] = last;
  std::shuffle(out.begin(), out.end(), rng.engine());
  return out;
}

}  // namespace atlas::exec
