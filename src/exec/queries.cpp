#include "exec/queries.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/error.h"

namespace atlas::exec {
namespace {

/// Logical basis index -> (shard, offset) under the state's layout.
std::pair<int, Index> locate(const DistState& state, Index logical_index) {
  const Layout& l = state.layout();
  Index phys = 0;
  for (int q = 0; q < l.num_qubits(); ++q)
    if (test_bit(logical_index, q)) phys |= bit(l.phys_of_logical[q]);
  const Index offset = phys & (state.shard_size() - 1);
  const Index high = phys >> l.num_local;
  return {static_cast<int>(high ^ l.shard_xor), offset};
}

/// Logical index of the amplitude stored at (shard, offset).
Index logical_of(const DistState& state, int shard, Index offset) {
  const Layout& l = state.layout();
  const Index phys =
      ((static_cast<Index>(shard) ^ l.shard_xor) << l.num_local) | offset;
  Index logical = 0;
  for (int p = 0; p < l.num_qubits(); ++p)
    if (test_bit(phys, p)) logical |= bit(l.logical_of_phys[p]);
  return logical;
}

}  // namespace

Amp amplitude(const DistState& state, Index logical_index) {
  ATLAS_CHECK(logical_index < (Index{1} << state.num_qubits()),
              "basis state out of range");
  const auto [s, o] = locate(state, logical_index);
  return state.shard(s)[o];
}

double probability(const DistState& state, Index logical_index) {
  return std::norm(amplitude(state, logical_index));
}

double norm_sq(const DistState& state) {
  double total = 0;
  for (int s = 0; s < state.num_shards(); ++s)
    for (const Amp& a : state.shard(s)) total += std::norm(a);
  return total;
}

std::vector<double> marginal_distribution(const DistState& state,
                                          const std::vector<Qubit>& qubits) {
  const Layout& l = state.layout();
  for (Qubit q : qubits)
    ATLAS_CHECK(q >= 0 && q < state.num_qubits(), "qubit out of range");
  std::vector<double> dist(Index{1} << qubits.size(), 0.0);
  // Split the queried qubits into local (vary inside the shard) and
  // non-local (fixed per shard) so the inner loop touches each
  // amplitude once with cheap index arithmetic.
  std::vector<int> local_pos, nonlocal_out;
  std::vector<int> local_out;
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    if (l.is_local(qubits[i])) {
      local_pos.push_back(l.phys_of_logical[qubits[i]]);
      local_out.push_back(static_cast<int>(i));
    } else {
      nonlocal_out.push_back(static_cast<int>(i));
    }
  }
  for (int s = 0; s < state.num_shards(); ++s) {
    Index base_out = 0;
    for (std::size_t j = 0; j < nonlocal_out.size(); ++j) {
      const Qubit q = qubits[nonlocal_out[j]];
      if (l.nonlocal_bit(q, s)) base_out |= bit(nonlocal_out[j]);
    }
    const auto& shard = state.shard(s);
    for (Index o = 0; o < state.shard_size(); ++o) {
      const double p = std::norm(shard[o]);
      if (p == 0.0) continue;
      Index out = base_out;
      for (std::size_t j = 0; j < local_pos.size(); ++j)
        if (test_bit(o, local_pos[j])) out |= bit(local_out[j]);
      dist[out] += p;
    }
  }
  return dist;
}

double expectation_z(const DistState& state, Qubit q) {
  const auto dist = marginal_distribution(state, {q});
  return dist[0] - dist[1];
}

StateMoments state_moments(const DistState& state) {
  const Layout& l = state.layout();
  const int n = state.num_qubits();
  StateMoments m;
  m.z.assign(static_cast<std::size_t>(n), 0.0);
  std::vector<int> local_pos(static_cast<std::size_t>(n), -1);
  for (Qubit q = 0; q < n; ++q)
    if (l.is_local(q)) local_pos[static_cast<std::size_t>(q)] =
        l.phys_of_logical[q];
  for (int s = 0; s < state.num_shards(); ++s) {
    // Non-local qubits are fixed per shard: accumulate their sign
    // against the shard's total weight instead of per amplitude.
    double shard_norm = 0;
    std::vector<double> local_z(static_cast<std::size_t>(n), 0.0);
    const auto& shard = state.shard(s);
    for (Index o = 0; o < state.shard_size(); ++o) {
      const double p = std::norm(shard[o]);
      if (p == 0.0) continue;
      shard_norm += p;
      for (Qubit q = 0; q < n; ++q) {
        const int pos = local_pos[static_cast<std::size_t>(q)];
        if (pos >= 0)
          local_z[static_cast<std::size_t>(q)] += test_bit(o, pos) ? -p : p;
      }
    }
    m.norm_sq += shard_norm;
    for (Qubit q = 0; q < n; ++q) {
      const int pos = local_pos[static_cast<std::size_t>(q)];
      if (pos >= 0)
        m.z[static_cast<std::size_t>(q)] += local_z[static_cast<std::size_t>(q)];
      else
        m.z[static_cast<std::size_t>(q)] +=
            l.nonlocal_bit(q, s) ? -shard_norm : shard_norm;
    }
  }
  return m;
}

std::vector<Index> sample(const DistState& state, int shots, Rng& rng) {
  return sample(state, shots, rng, 1.0);
}

std::vector<Index> sample(const DistState& state, int shots, Rng& rng,
                          double total_norm) {
  std::vector<double> draws(shots);
  for (auto& d : draws) d = rng.uniform() * total_norm;
  std::sort(draws.begin(), draws.end());
  std::vector<Index> out(shots);
  double cum = 0;
  std::size_t k = 0;
  Index last = 0;
  for (int s = 0; s < state.num_shards() && k < draws.size(); ++s) {
    const auto& shard = state.shard(s);
    for (Index o = 0; o < state.shard_size() && k < draws.size(); ++o) {
      cum += std::norm(shard[o]);
      last = logical_of(state, s, o);
      while (k < draws.size() && draws[k] < cum) out[k++] = last;
    }
  }
  while (k < draws.size()) out[k++] = last;
  std::shuffle(out.begin(), out.end(), rng.engine());
  return out;
}

}  // namespace atlas::exec
