#pragma once

/// \file stage_program.h
/// Bind-time stage compilation: the layer between execution plans and
/// the per-shard loop. compile_stage_program() runs once per stage per
/// run and hoists everything shard-invariant out of the hot loop:
///
///  * parameter materialization — every gate matrix is built by
///    resolving its Params against a ParamEnv (dense slot indexing for
///    canonical plans), with no subcircuit copy and no string lookups;
///  * gate localization — logical qubits are remapped to physical bit
///    positions against the stage layout once, not per shard;
///  * kernel lowering — fused matrices are multiplied out and
///    shared-memory gather/scatter offset tables are built once per
///    distinct non-local bit pattern, not per shard.
///
/// The only genuinely shard-dependent inputs are the values of the
/// shard's non-local bits: they decide whether a non-local control
/// fires, which diagonal restriction applies, and which anti-diagonal
/// scale is picked. Each kernel therefore records the set of shard-id
/// bits it reads (`pattern_bits`) and a table of fully lowered variants
/// indexed by the gathered bit pattern — per-shard "specialization" is
/// a few bit tests and a table lookup. Since a kernel reading j shard
/// bits has at most 2^j <= num_shards distinct variants, compiling
/// variants eagerly never exceeds the old per-shard localization work
/// and is shared by every shard with the same pattern. The deliberate
/// tradeoff: the table is built serially and held for the stage, so
/// resident memory is O(variants) where the old code kept O(1)
/// transient state per shard worker — fine at in-process shard counts
/// (shards cost 2^L amplitudes each, dwarfing their variant); a run
/// with very many tiny shards would want lazy per-pattern memoization
/// instead.

/// Stage compilation is itself two-phase: everything that depends only
/// on gate *structure* and the layout — pattern bits, which gates fire
/// per variant, diagonal restriction indices, shm actives/offsets,
/// fused spans — lives in a StageSkeleton that sweeps and trajectory
/// batches compile once and cache on the plan (StageSkeletonCache on
/// PlannedStage); per binding only the matrix values are re-filled
/// (bind_stage_program). stage_skeleton_compiles() counts skeleton
/// builds process-wide so tests can prove a sweep compiles each stage's
/// structure exactly once.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "exec/layout.h"
#include "ir/circuit.h"
#include "ir/param.h"
#include "kernelize/kernel.h"
#include "sim/apply.h"
#include "sim/shm_executor.h"

namespace atlas::exec {

/// One kernel fully lowered for all shards matching a non-local bit
/// pattern: an optional scalar (diagonal/anti-diagonal contributions of
/// non-local qubits) plus either a fused matrix kernel or a compiled
/// shared-memory program.
struct KernelVariant {
  Amp scale{1.0, 0.0};
  enum class Op { None, Fused, Shm } op = Op::None;
  PreparedGate fused;
  ShmProgram shm;
};

struct KernelProgram {
  /// Shard-index bit positions this kernel's localization reads,
  /// ascending; empty when the kernel is identical on every shard (the
  /// common case — staging keeps non-insular qubits local).
  std::vector<int> pattern_bits;
  /// Lowered variants indexed by the gathered pattern (size
  /// 2^|pattern_bits|).
  std::vector<KernelVariant> variants;
  /// The resolved parameter values this program was bound under, in
  /// slot walk order (empty for kernels without parameters). Batched
  /// binds compare these against the new point's values: canonical
  /// plans carry every angle as a "$k" slot symbol, so value equality
  /// — not symbol presence — is what decides whether a kernel's fusion
  /// products can be shared across sweep points.
  std::vector<double> bound_values;
};

/// A stage compiled against a concrete layout and parameter
/// environment. Immutable after compilation; run_stage_program() is
/// const and called concurrently from every shard worker. Kernels are
/// held by shared_ptr so consecutive bindings of the same skeleton can
/// share the parameter-independent ones (the bind-many delta: a sweep
/// re-materializes only the kernels whose gates read a swept slot —
/// constant matrices, fusion products, and shm tables bind once and
/// are replayed by every queue launch of the batch).
struct StageProgram {
  std::vector<std::shared_ptr<const KernelProgram>> kernels;
  /// shard_xor in effect after the stage (anti-diagonal non-local gates
  /// flip shard-id mapping bits as they execute).
  Index final_xor = 0;
};

/// The binding-independent half of a compiled stage. Every field is a
/// pure function of gate structure (kinds, qubits, control counts —
/// plus the numeric content of explicit Unitary matrices, which carry
/// no parameters) and the layout; no gate parameter value enters, so
/// one skeleton serves every binding of a slot-canonical plan.
struct StageSkeleton {
  /// Structural half of a gate preparation: its shard-specialization
  /// case, physical bit positions, and shard-id decision bits — the
  /// matrix values are filled at bind time.
  struct GateSlot {
    enum class Case { Local, DiagScale, DiagRestrict, Antidiag, Ctrl };
    Case kind = Case::Local;
    int gate = 0;  ///< index into the stage subcircuit
    /// Local part: physical target/control bit positions (Local, Ctrl,
    /// and DiagRestrict targets).
    std::vector<int> targets, controls;
    /// DiagScale/DiagRestrict: gate-index-space positions of non-local
    /// and local qubits.
    std::vector<int> nonlocal_pos, local_pos;
    /// Shard-id bits this gate reads, plus the shard_xor correction in
    /// effect before it.
    std::vector<int> decision_bits;
    Index xor_adjust = 0;
  };
  /// One lowered variant, structurally: which slots contribute ops (in
  /// gate order, with the fixed non-local sub-index for diagonal
  /// restriction), which contribute scalar factors, and the kernel-type
  /// specific structure (fused span / shm skeleton).
  struct VariantSkeleton {
    struct Fired {
      int slot = 0;
      Index fixed = 0;  ///< DiagRestrict: non-local sub-index
    };
    std::vector<Fired> ops;
    struct ScaleTerm {
      int slot = 0;
      /// DiagScale: the diagonal index of the scalar entry; Antidiag:
      /// 0/1 selecting the m(1,0)/m(0,1) factor.
      Index sel = 0;
    };
    std::vector<ScaleTerm> scales;
    std::vector<int> fused_targets;  ///< Fusion kernels: bit_union span
    ShmSkeleton shm;                 ///< Shm kernels: actives/offsets
  };
  struct KernelSkeleton {
    std::vector<int> pattern_bits;
    kernelize::KernelType type = kernelize::KernelType::Fusion;
    std::vector<GateSlot> slots;
    std::vector<VariantSkeleton> variants;  ///< size 2^|pattern_bits|
    /// True when any slot's gate carries a non-constant Param: the
    /// bound KernelProgram then depends on the ParamEnv and must be
    /// re-materialized per binding. Constant kernels bind once and are
    /// shared across every binding of the skeleton (delta bind).
    bool param_dependent = false;
  };
  std::vector<KernelSkeleton> kernels;
  Index final_xor = 0;
  /// Digest of the layout this skeleton was compiled against (guards
  /// cache reuse across runs entering the stage with different
  /// layouts).
  std::uint64_t layout_digest = 0;
};

/// Hash of everything a StageSkeleton reads from the layout: qubit
/// positions, the local split, and the shard_xor correction.
std::uint64_t layout_digest(const Layout& layout);

/// Compiles the binding-independent skeleton of one planned stage.
/// Throws atlas::Error when a non-insular qubit is not local (staging
/// bug). Increments the stage_skeleton_compiles() probe.
StageSkeleton compile_stage_skeleton(const Circuit& subcircuit,
                                     const kernelize::Kernelization& kernels,
                                     const Layout& layout);

/// Fills a skeleton with matrix values resolved against `env`: gate
/// matrices are materialized once per slot, fusion products multiplied
/// out, and shm programs bound over the cached gather maps. Throws
/// atlas::Error when a symbolic parameter cannot be resolved.
///
/// `reuse` (optional) must be a program previously bound from the SAME
/// skeleton: its parameter-independent kernels are shared instead of
/// re-materialized, so a batch of N bindings pays C + N*P kernel binds
/// (C constant kernels bound once, P parameter-dependent kernels per
/// binding) instead of N*(C+P). Every actual materialization counts in
/// stage_kernel_binds().
StageProgram bind_stage_program(const Circuit& subcircuit,
                                const StageSkeleton& skeleton,
                                const ParamEnv& env,
                                const StageProgram* reuse = nullptr);

/// Process-wide count of compile_stage_skeleton() calls. Regression
/// probe: an S-stage sweep over N points must compile exactly S
/// skeletons, not N*S (the cache on PlannedStage re-binds values only).
std::uint64_t stage_skeleton_compiles();

/// Process-wide count of KernelProgram materializations inside
/// bind_stage_program(). Regression probe for the bind-many delta: a
/// batched sweep re-binds only parameter-dependent kernels per point.
std::uint64_t stage_kernel_binds();

/// Thread-safe lazy holder for one stage's skeleton, shared by every
/// run of the owning plan. Rebuilds (and replaces) the skeleton when a
/// run enters the stage under a different layout than the cached one —
/// correctness first; the steady state of sweeps and trajectory batches
/// is a single build.
class StageSkeletonCache {
 public:
  std::shared_ptr<const StageSkeleton> get_or_build(
      const Layout& layout, const std::function<StageSkeleton()>& build);

 private:
  Mutex mu_;
  std::shared_ptr<const StageSkeleton> cached_ ATLAS_GUARDED_BY(mu_);
};

/// Compiles one planned stage (its subcircuit + kernelization) against
/// `layout` and `env`: compile_stage_skeleton + bind_stage_program in
/// one uncached call. Throws atlas::Error when a symbolic parameter
/// cannot be resolved or a non-insular qubit is not local (staging
/// bug).
StageProgram compile_stage_program(const Circuit& subcircuit,
                                   const kernelize::Kernelization& kernels,
                                   const Layout& layout, const ParamEnv& env);

/// Executes a compiled stage on one shard's buffer. `scratch` is
/// caller-provided shared-memory staging storage reused across kernels.
void run_stage_program(const StageProgram& prog, int shard, Amp* data,
                       Index size, std::vector<Amp>& scratch);

}  // namespace atlas::exec
