#pragma once

/// \file stage_program.h
/// Bind-time stage compilation: the layer between execution plans and
/// the per-shard loop. compile_stage_program() runs once per stage per
/// run and hoists everything shard-invariant out of the hot loop:
///
///  * parameter materialization — every gate matrix is built by
///    resolving its Params against a ParamEnv (dense slot indexing for
///    canonical plans), with no subcircuit copy and no string lookups;
///  * gate localization — logical qubits are remapped to physical bit
///    positions against the stage layout once, not per shard;
///  * kernel lowering — fused matrices are multiplied out and
///    shared-memory gather/scatter offset tables are built once per
///    distinct non-local bit pattern, not per shard.
///
/// The only genuinely shard-dependent inputs are the values of the
/// shard's non-local bits: they decide whether a non-local control
/// fires, which diagonal restriction applies, and which anti-diagonal
/// scale is picked. Each kernel therefore records the set of shard-id
/// bits it reads (`pattern_bits`) and a table of fully lowered variants
/// indexed by the gathered bit pattern — per-shard "specialization" is
/// a few bit tests and a table lookup. Since a kernel reading j shard
/// bits has at most 2^j <= num_shards distinct variants, compiling
/// variants eagerly never exceeds the old per-shard localization work
/// and is shared by every shard with the same pattern. The deliberate
/// tradeoff: the table is built serially and held for the stage, so
/// resident memory is O(variants) where the old code kept O(1)
/// transient state per shard worker — fine at in-process shard counts
/// (shards cost 2^L amplitudes each, dwarfing their variant); a run
/// with very many tiny shards would want lazy per-pattern memoization
/// instead.

#include <vector>

#include "exec/layout.h"
#include "ir/circuit.h"
#include "ir/param.h"
#include "kernelize/kernel.h"
#include "sim/apply.h"
#include "sim/shm_executor.h"

namespace atlas::exec {

/// One kernel fully lowered for all shards matching a non-local bit
/// pattern: an optional scalar (diagonal/anti-diagonal contributions of
/// non-local qubits) plus either a fused matrix kernel or a compiled
/// shared-memory program.
struct KernelVariant {
  Amp scale{1.0, 0.0};
  enum class Op { None, Fused, Shm } op = Op::None;
  PreparedGate fused;
  ShmProgram shm;
};

struct KernelProgram {
  /// Shard-index bit positions this kernel's localization reads,
  /// ascending; empty when the kernel is identical on every shard (the
  /// common case — staging keeps non-insular qubits local).
  std::vector<int> pattern_bits;
  /// Lowered variants indexed by the gathered pattern (size
  /// 2^|pattern_bits|).
  std::vector<KernelVariant> variants;
};

/// A stage compiled against a concrete layout and parameter
/// environment. Immutable after compilation; run_stage_program() is
/// const and called concurrently from every shard worker.
struct StageProgram {
  std::vector<KernelProgram> kernels;
  /// shard_xor in effect after the stage (anti-diagonal non-local gates
  /// flip shard-id mapping bits as they execute).
  Index final_xor = 0;
};

/// Compiles one planned stage (its subcircuit + kernelization) against
/// `layout` and `env`. Throws atlas::Error when a symbolic parameter
/// cannot be resolved or a non-insular qubit is not local (staging
/// bug).
StageProgram compile_stage_program(const Circuit& subcircuit,
                                   const kernelize::Kernelization& kernels,
                                   const Layout& layout, const ParamEnv& env);

/// Executes a compiled stage on one shard's buffer. `scratch` is
/// caller-provided shared-memory staging storage reused across kernels.
void run_stage_program(const StageProgram& prog, int shard, Amp* data,
                       Index size, std::vector<Amp>& scratch);

}  // namespace atlas::exec
