#include "staging/stager.h"

#include "common/error.h"
#include "staging/snuqs.h"

namespace atlas::staging {

StagedCircuit stage_circuit(const Circuit& circuit, const MachineShape& shape,
                            const StagingOptions& options) {
  switch (options.engine) {
    case StagerEngine::Ilp: {
      auto staged = stage_with_ilp(circuit, shape, options.ilp);
      ATLAS_CHECK(staged.has_value(),
                  "ILP stager exhausted its node budget; use the Bnb engine");
      return *std::move(staged);
    }
    case StagerEngine::Bnb:
      return stage_with_bnb(circuit, shape, options.bnb);
    case StagerEngine::SnuQS:
      return stage_with_snuqs(circuit, shape);
    case StagerEngine::Auto: {
      // The general MIP solver is exact but dense; reserve it for
      // small models and use the specialized search otherwise.
      const ReducedCircuit rc = reduce(circuit);
      if (static_cast<int>(rc.gates.size()) <= 12 &&
          circuit.num_qubits() <= 9) {
        auto staged = stage_with_ilp(circuit, shape, options.ilp);
        if (staged.has_value()) return *std::move(staged);
      }
      return stage_with_bnb(circuit, shape, options.bnb);
    }
  }
  throw Error("unknown stager engine");
}

}  // namespace atlas::staging
