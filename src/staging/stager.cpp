#include "staging/stager.h"

#include "staging/registry.h"

namespace atlas::staging {

StagedCircuit stage_circuit(const Circuit& circuit, const MachineShape& shape,
                            const StagingOptions& options) {
  // The legacy enum path and the Session's by-name path share one
  // implementation: resolve the engine from the registry.
  return stager_registry()
      .create(stager_engine_name(options.engine))
      ->stage(circuit, shape, options);
}

}  // namespace atlas::staging
