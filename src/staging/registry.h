#pragma once

/// \file registry.h
/// The pluggable staging seam: a polymorphic Stager interface over the
/// STAGE engines (ilp, bnb, snuqs, auto) plus a string-keyed registry
/// so external engines can plug in without touching core headers.
/// SessionConfig::stager selects by name; stage_circuit() keeps the
/// legacy enum path routed through the same registry.

#include <memory>
#include <string>

#include "common/registry.h"
#include "staging/stager.h"

namespace atlas::staging {

/// A staging engine. Implementations must return a staging that passes
/// validate_staging() for the given shape, and throw atlas::Error when
/// none exists (e.g. a gate with more non-insular qubits than local
/// capacity).
///
/// Entry contract (the compile pipeline, core/pipeline.h): the circuit
/// a stager sees is *post-optimization and slot-canonical* — gate-level
/// rewrites (merging, resynthesis, commutation-aware reordering) have
/// already run at the session's opt_level, and every rotation-family
/// parameter is an engine slot symbol ("$k"), never a concrete value.
/// Stagers must therefore decide insularity/diagonality per gate kind
/// (paper Definition 2), never numerically — the same staging serves
/// every binding of the slots. Circuits from the value-keyed plan()
/// path and per-trajectory noise lowerings skip both front phases, so
/// concrete parameters (and non-unitary trajectory operators) remain
/// legal inputs; only the *canonical* form is guaranteed slot-pure.
class Stager {
 public:
  virtual ~Stager() = default;

  /// The registry key this engine was built for ("bnb", ...).
  virtual std::string name() const = 0;

  /// Stages `circuit` for `shape`. `options` carries the per-engine
  /// tuning knobs; engines read their own sub-struct and ignore the
  /// rest.
  virtual StagedCircuit stage(const Circuit& circuit,
                              const MachineShape& shape,
                              const StagingOptions& options) const = 0;
};

using StagerRegistry = Registry<Stager>;

/// The process-wide stager registry. Built-ins ("ilp", "bnb", "snuqs",
/// "auto") are registered on first access; user engines may be added
/// any time with stager_registry().add(name, factory).
StagerRegistry& stager_registry();

/// The registry key for a legacy StagerEngine enum value.
const char* stager_engine_name(StagerEngine engine);

}  // namespace atlas::staging
