#include "staging/bnb_stager.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "common/bits.h"
#include "common/error.h"
#include "common/rng.h"

namespace atlas::staging {
namespace {

using Mask = std::uint64_t;

/// Dynamic bitset over reduced-gate indices.
struct DoneSet {
  std::vector<std::uint64_t> words;

  explicit DoneSet(int n) : words((n + 63) / 64, 0) {}
  bool test(int i) const { return (words[i >> 6] >> (i & 63)) & 1; }
  void set(int i) { words[i >> 6] |= std::uint64_t{1} << (i & 63); }
  bool operator==(const DoneSet& o) const { return words == o.words; }

  std::size_t hash() const {
    std::size_t h = 1469598103934665603ull;
    for (auto w : words) {
      h ^= w;
      h *= 1099511628211ull;
    }
    return h;
  }
};

class BnbSearch {
 public:
  BnbSearch(const ReducedCircuit& rc, int num_local,
            const BnbStagerOptions& options)
      : rc_(rc), L_(num_local), options_(options) {
    const int ng = static_cast<int>(rc_.gates.size());
    succs_.resize(ng);
    for (int g = 0; g < ng; ++g)
      for (int p : rc_.gates[g].preds) succs_[p].push_back(g);
    // Remaining-use count per qubit (for the reuse-priority variant).
    qubit_uses_.assign(rc_.num_qubits, 0);
    for (const auto& g : rc_.gates)
      for (int q = 0; q < rc_.num_qubits; ++q)
        if (test_bit(g.ni_mask, q)) ++qubit_uses_[q];
  }

  /// Finds a minimum-stage staging; returns the demand mask of each
  /// stage. Falls back to pure greedy when the node budget runs out.
  std::vector<std::vector<Mask>> solve() {
    const int ng = static_cast<int>(rc_.gates.size());
    if (ng == 0) return {{0}};
    DoneSet empty(ng);
    const int lb = std::max(1, lower_bound(empty));
    for (int s = lb; s <= options_.max_stages; ++s) {
      solutions_.clear();
      failed_.clear();
      nodes_ = 0;
      std::vector<Mask> prefix;
      dfs(empty, s, /*prev_local=*/0, prefix);
      if (!solutions_.empty()) return solutions_;
      if (nodes_ >= options_.node_budget) break;
    }
    // Budget exhausted: greedy (always makes progress each stage).
    return {greedy()};
  }

 private:
  /// ceil(|union of remaining non-insular qubits| / L): every stage
  /// contributes at most L distinct local qubits.
  int lower_bound(const DoneSet& done) const {
    Mask u = 0;
    for (std::size_t g = 0; g < rc_.gates.size(); ++g)
      if (!done.test(static_cast<int>(g))) u |= rc_.gates[g].ni_mask;
    return (popcount(u) + L_ - 1) / L_;
  }

  /// Executes every ready gate whose demand fits in `local`; returns
  /// the executed-gate demand union (0 if no progress).
  Mask closure(DoneSet& done, Mask local) const {
    const int ng = static_cast<int>(rc_.gates.size());
    std::vector<int> indeg(ng, 0);
    std::vector<int> ready;
    for (int g = 0; g < ng; ++g) {
      if (done.test(g)) continue;
      for (int p : rc_.gates[g].preds)
        if (!done.test(p)) ++indeg[g];
      if (indeg[g] == 0) ready.push_back(g);
    }
    Mask demand = 0;
    while (!ready.empty()) {
      const int g = ready.back();
      ready.pop_back();
      if ((rc_.gates[g].ni_mask & ~local) != 0) continue;  // blocked
      done.set(g);
      demand |= rc_.gates[g].ni_mask;
      for (int s : succs_[g]) {
        if (done.test(s)) continue;
        if (--indeg[s] == 0) ready.push_back(s);
      }
    }
    return demand;
  }

  /// Greedily builds one local set by scanning ready gates in the
  /// given priority order and admitting qubits while they fit.
  Mask build_candidate(const DoneSet& done, Mask prev_local, int variant,
                       Rng& rng) const {
    const int ng = static_cast<int>(rc_.gates.size());
    std::vector<int> indeg(ng, 0);
    std::vector<int> ready;
    for (int g = 0; g < ng; ++g) {
      if (done.test(g)) continue;
      for (int p : rc_.gates[g].preds)
        if (!done.test(p)) ++indeg[g];
      if (indeg[g] == 0) ready.push_back(g);
    }
    DoneSet sim = done;
    Mask cand = 0;
    auto score = [&](int g) -> double {
      const Mask missing = rc_.gates[g].ni_mask & ~cand;
      switch (variant) {
        case 0:  // original order
          return g;
        case 1:  // fewest new qubits
          return popcount(missing) * 1e6 + g;
        case 2: {  // prefer qubits that were local last stage
          const int outside = popcount(missing & ~prev_local);
          return outside * 1e6 + g;
        }
        case 3: {  // prefer high-reuse qubits (admit hubs early)
          double reuse = 0;
          for (int q = 0; q < rc_.num_qubits; ++q)
            if (test_bit(missing, q)) reuse += qubit_uses_[q];
          return -reuse * 1e3 + g;
        }
        default:  // randomized tie-break
          return static_cast<double>(rng.index(1 << 20));
      }
    };
    for (;;) {
      // Execute everything that already fits.
      bool progressed = true;
      while (progressed) {
        progressed = false;
        for (std::size_t i = 0; i < ready.size(); ++i) {
          const int g = ready[i];
          if ((rc_.gates[g].ni_mask & ~cand) != 0) continue;
          sim.set(g);
          ready[i] = ready.back();
          ready.pop_back();
          --i;
          for (int s : succs_[g])
            if (!sim.test(s) && --indeg[s] == 0) ready.push_back(s);
          progressed = true;
        }
      }
      // Admit the qubits of the best-scoring ready gate that fits.
      int best = -1;
      double best_score = std::numeric_limits<double>::infinity();
      for (int g : ready) {
        const Mask grown = cand | rc_.gates[g].ni_mask;
        if (popcount(grown) > L_) continue;
        const double sc = score(g);
        if (sc < best_score) {
          best_score = sc;
          best = g;
        }
      }
      if (best < 0) return cand;
      cand |= rc_.gates[best].ni_mask;
    }
  }

  void dfs(const DoneSet& done, int stages_left, Mask prev_local,
           std::vector<Mask>& prefix) {
    if (static_cast<int>(solutions_.size()) >= options_.max_solutions) return;
    if (nodes_++ >= options_.node_budget) return;
    if (lower_bound(done) > stages_left) return;
    const auto key = std::make_pair(done.hash(), stages_left);
    if (failed_.count(key)) return;

    // Generate and deduplicate candidate local sets.
    Rng rng(done.hash() * 1315423911ull + stages_left);
    std::vector<Mask> cands;
    for (int v = 0; v < options_.beam_width; ++v) {
      const Mask c = build_candidate(done, prev_local, v, rng);
      if (c == 0) continue;
      if (std::find(cands.begin(), cands.end(), c) == cands.end())
        cands.push_back(c);
    }
    // Order candidates by transition cost (new local qubits first).
    std::sort(cands.begin(), cands.end(), [&](Mask a, Mask b) {
      return popcount(a & ~prev_local) < popcount(b & ~prev_local);
    });

    const std::size_t solutions_before = solutions_.size();
    for (Mask c : cands) {
      DoneSet next = done;
      const Mask demand = closure(next, c);
      if (demand == 0) continue;
      prefix.push_back(demand);
      bool complete = true;
      for (std::size_t g = 0; g < rc_.gates.size(); ++g)
        if (!next.test(static_cast<int>(g))) {
          complete = false;
          break;
        }
      if (complete) {
        solutions_.push_back(prefix);
      } else if (stages_left > 1) {
        dfs(next, stages_left - 1, c, prefix);
      }
      prefix.pop_back();
      if (static_cast<int>(solutions_.size()) >= options_.max_solutions)
        return;
    }
    if (solutions_.size() == solutions_before) failed_.insert(key);
  }

  /// Pure greedy fallback: variant-0 candidates until everything runs.
  std::vector<Mask> greedy() const {
    const int ng = static_cast<int>(rc_.gates.size());
    DoneSet done(ng);
    Rng rng(1);
    std::vector<Mask> demands;
    Mask prev = 0;
    for (;;) {
      bool complete = true;
      for (int g = 0; g < ng; ++g)
        if (!done.test(g)) {
          complete = false;
          break;
        }
      if (complete) break;
      const Mask cand = build_candidate(done, prev, 0, rng);
      const Mask demand = closure(done, cand);
      ATLAS_CHECK(demand != 0, "greedy staging failed to make progress");
      demands.push_back(demand);
      prev = cand;
    }
    return demands;
  }

  struct PairHash {
    std::size_t operator()(const std::pair<std::size_t, int>& p) const {
      return p.first * 31 + static_cast<std::size_t>(p.second);
    }
  };

  const ReducedCircuit& rc_;
  const int L_;
  const BnbStagerOptions& options_;
  std::vector<std::vector<int>> succs_;
  std::vector<int> qubit_uses_;
  std::vector<std::vector<Mask>> solutions_;
  std::unordered_set<std::pair<std::size_t, int>, PairHash> failed_;
  long nodes_ = 0;
};

/// Pads stage demand sets to full L/R/G partitions, minimizing Eq. (2):
/// keep yesterday's locals local when possible, keep globals global,
/// and park the latest-needed qubits in the global set (Belady).
std::vector<QubitPartition> assign_partitions(
    const std::vector<Mask>& demands, int n, const MachineShape& shape) {
  const int s = static_cast<int>(demands.size());
  // next_need[k][q]: first stage >= k whose demand contains q.
  std::vector<std::vector<int>> next_need(
      s + 1, std::vector<int>(n, std::numeric_limits<int>::max()));
  for (int k = s - 1; k >= 0; --k)
    for (int q = 0; q < n; ++q)
      next_need[k][q] = test_bit(demands[k], q) ? k : next_need[k + 1][q];

  std::vector<QubitPartition> parts(s);
  Mask prev_local = 0, prev_global = 0;
  for (int k = 0; k < s; ++k) {
    // --- Local set: demand plus padding. ---
    Mask local = demands[k];
    ATLAS_CHECK(popcount(local) <= shape.num_local,
                "stage demand exceeds local capacity");
    // 1. Zero-cost padding: qubits local last stage, soonest-needed
    //    first (sort by next use among prev locals).
    {
      std::vector<int> hold;
      for (int q = 0; q < n; ++q)
        if (test_bit(prev_local, q) && !test_bit(local, q)) hold.push_back(q);
      std::sort(hold.begin(), hold.end(), [&](int a, int b) {
        return next_need[k][a] < next_need[k][b];
      });
      for (int q : hold) {
        if (popcount(local) >= shape.num_local) break;
        local |= bit(q);
      }
    }
    // 2. Cost-1 padding: prefer regional (non-global) qubits needed
    //    soonest.
    {
      std::vector<int> rest;
      for (int q = 0; q < n; ++q)
        if (!test_bit(local, q)) rest.push_back(q);
      std::sort(rest.begin(), rest.end(), [&](int a, int b) {
        const bool ga = test_bit(prev_global, a), gb = test_bit(prev_global, b);
        if (ga != gb) return !ga;  // keep global qubits global
        return next_need[k][a] < next_need[k][b];
      });
      for (int q : rest) {
        if (popcount(local) >= shape.num_local) break;
        local |= bit(q);
      }
    }

    // --- Global set from the complement: reuse old globals, then park
    // the latest-needed qubits. ---
    Mask global = 0;
    {
      std::vector<int> nonlocal;
      for (int q = 0; q < n; ++q)
        if (!test_bit(local, q)) nonlocal.push_back(q);
      std::sort(nonlocal.begin(), nonlocal.end(), [&](int a, int b) {
        const bool ga = test_bit(prev_global, a), gb = test_bit(prev_global, b);
        if (ga != gb) return ga;  // old globals first (zero cost)
        return next_need[k][a] > next_need[k][b];  // latest-needed next
      });
      for (int i = 0; i < shape.num_global; ++i) global |= bit(nonlocal[i]);
    }

    QubitPartition& p = parts[k];
    for (int q = 0; q < n; ++q) {
      if (test_bit(local, q)) p.local.push_back(q);
      else if (test_bit(global, q)) p.global.push_back(q);
      else p.regional.push_back(q);
    }
    prev_local = local;
    prev_global = global;
  }
  return parts;
}

}  // namespace

StagedCircuit stage_with_bnb(const Circuit& circuit,
                             const MachineShape& shape,
                             const BnbStagerOptions& options) {
  ATLAS_CHECK(shape.total() == circuit.num_qubits(), "shape/circuit mismatch");
  ATLAS_CHECK(circuit.num_qubits() < 64, "staging supports < 64 qubits");
  const ReducedCircuit rc = reduce(circuit);
  for (const auto& g : rc.gates)
    ATLAS_CHECK(popcount(g.ni_mask) <= shape.num_local,
                "a gate touches more non-insular qubits ("
                    << popcount(g.ni_mask) << ") than local capacity ("
                    << shape.num_local << "); no staging exists");

  BnbSearch search(rc, shape.num_local, options);
  const auto demand_solutions = search.solve();
  ATLAS_CHECK(!demand_solutions.empty(), "stager produced no solution");

  // Pick the sampled solution with the lowest Eq. (2) cost after
  // partition assignment.
  StagedCircuit best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const auto& demands : demand_solutions) {
    const auto parts =
        assign_partitions(demands, circuit.num_qubits(), shape);

    // Recover gate placement by replaying the closure over local sets.
    std::vector<int> stage_of_reduced(rc.gates.size(), -1);
    {
      const int ng = static_cast<int>(rc.gates.size());
      std::vector<int> indeg(ng, 0);
      std::vector<bool> done(ng, false);
      std::vector<std::vector<int>> succs(ng);
      for (int g = 0; g < ng; ++g)
        for (int p : rc.gates[g].preds) {
          ++indeg[g];
          succs[p].push_back(g);
        }
      for (std::size_t k = 0; k < parts.size(); ++k) {
        Mask local = 0;
        for (Qubit q : parts[k].local) local |= bit(q);
        std::vector<int> ready;
        for (int g = 0; g < ng; ++g)
          if (!done[g] && indeg[g] == 0) ready.push_back(g);
        while (!ready.empty()) {
          const int g = ready.back();
          ready.pop_back();
          if ((rc.gates[g].ni_mask & ~local) != 0) continue;
          done[g] = true;
          stage_of_reduced[g] = static_cast<int>(k);
          for (int sg : succs[g])
            if (!done[sg] && --indeg[sg] == 0) ready.push_back(sg);
        }
      }
      for (int g = 0; g < ng; ++g)
        ATLAS_CHECK(done[g], "replay failed to place gate " << g);
    }

    const auto stage_of_original =
        assign_original_stages(circuit, rc, stage_of_reduced);
    StagedCircuit staged;
    staged.stages.resize(parts.size());
    for (std::size_t k = 0; k < parts.size(); ++k)
      staged.stages[k].partition = parts[k];
    for (int g = 0; g < circuit.num_gates(); ++g)
      staged.stages[stage_of_original[g]].gate_indices.push_back(g);
    // Padding can let the replay pull gates forward, leaving empty
    // stages; drop them (keeping at least one stage).
    {
      std::vector<Stage> kept;
      for (auto& st : staged.stages)
        if (!st.gate_indices.empty()) kept.push_back(std::move(st));
      if (kept.empty()) kept.push_back(std::move(staged.stages.front()));
      staged.stages = std::move(kept);
    }
    staged.comm_cost = communication_cost(staged.stages, shape.cost_factor);
    if (staged.comm_cost < best_cost) {
      best_cost = staged.comm_cost;
      best = std::move(staged);
    }
  }
  return best;
}

}  // namespace atlas::staging
