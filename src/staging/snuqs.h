#pragma once

/// \file snuqs.h
/// The SnuQS-style heuristic staging baseline used in the paper's
/// Figure 9/12 comparison (Section VII-D): each stage greedily selects
/// as local the qubits with the most remaining gates operating on them
/// non-insularly, breaking ties by the total number of gates touching
/// the qubit.

#include "staging/stage.h"

namespace atlas::staging {

StagedCircuit stage_with_snuqs(const Circuit& circuit,
                               const MachineShape& shape);

}  // namespace atlas::staging
