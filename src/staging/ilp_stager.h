#pragma once

/// \file ilp_stager.h
/// The paper-faithful ILP circuit staging path (Section IV): builds
/// the binary program of Eq. (3)-(11) over the reduced model and
/// solves it with the home-grown branch-and-bound MIP solver
/// (ilp/solver.h), looping over the stage count s = 1, 2, ...
/// (Algorithm 2) and returning the first feasible, cost-minimal
/// staging.
///
/// The general MIP solver handles small and medium models; the
/// production default for large circuits is the specialized
/// branch-and-bound stager (bnb_stager.h), which solves the same
/// optimization problem with a purpose-built search. Both paths are
/// cross-validated in tests/test_staging.cpp.

#include <optional>

#include "staging/reduce.h"
#include "staging/stage.h"

namespace atlas::staging {

struct IlpStagerOptions {
  int max_stages = 16;
  long node_budget = 20000;  // branch-and-bound nodes per ILP solve
};

/// Runs Algorithm 2 with the ILP engine. Returns std::nullopt when the
/// node budget is exhausted before proving feasibility/optimality (the
/// caller should fall back to the specialized stager).
std::optional<StagedCircuit> stage_with_ilp(const Circuit& circuit,
                                            const MachineShape& shape,
                                            const IlpStagerOptions& options = {});

}  // namespace atlas::staging
