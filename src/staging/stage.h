#pragma once

/// \file stage.h
/// Output types of circuit staging (paper Section IV): a staged circuit
/// is a list of (subcircuit, qubit partition) pairs such that every
/// gate's non-insular qubits are local in its stage.

#include <vector>

#include "common/types.h"
#include "ir/circuit.h"

namespace atlas::staging {

/// A partition of the logical qubits into local / regional / global
/// sets (Definition 1). Sizes are fixed by the machine shape:
/// |local| = L, |regional| = R, |global| = G, L + R + G = n.
struct QubitPartition {
  std::vector<Qubit> local;
  std::vector<Qubit> regional;
  std::vector<Qubit> global;

  bool is_local(Qubit q) const;
  bool is_global(Qubit q) const;
};

/// One stage: the indices (into the original circuit) of the gates it
/// executes, in original relative order, plus its qubit partition.
struct Stage {
  std::vector<int> gate_indices;
  QubitPartition partition;
};

struct StagedCircuit {
  std::vector<Stage> stages;
  /// Total communication cost per the paper's Eq. (2):
  /// sum over stage transitions of |local_k \ local_{k-1}| +
  /// c * |global_k \ global_{k-1}|.
  double comm_cost = 0.0;
};

/// Machine shape for staging: L local qubits per shard, R regional,
/// G global; c is the inter-node cost factor of Eq. (2).
struct MachineShape {
  int num_local = 0;
  int num_regional = 0;
  int num_global = 0;
  double cost_factor = 3.0;

  int total() const { return num_local + num_regional + num_global; }
};

/// Evaluates Eq. (2) for a stage sequence.
double communication_cost(const std::vector<Stage>& stages,
                          double cost_factor);

/// Throws atlas::Error if `staged` is not a valid staging of `circuit`
/// for `shape`: partition sizes, gate coverage (each gate exactly
/// once), dependency order (each stage's set is down-closed), and
/// locality (non-insular qubits of each gate local in its stage).
void validate_staging(const Circuit& circuit, const StagedCircuit& staged,
                      const MachineShape& shape);

}  // namespace atlas::staging
