#include "staging/registry.h"

#include "common/error.h"
#include "staging/snuqs.h"

namespace atlas::staging {
namespace {

class IlpStager final : public Stager {
 public:
  std::string name() const override { return "ilp"; }
  StagedCircuit stage(const Circuit& circuit, const MachineShape& shape,
                      const StagingOptions& options) const override {
    auto staged = stage_with_ilp(circuit, shape, options.ilp);
    ATLAS_CHECK(staged.has_value(),
                "ILP stager exhausted its node budget; use the bnb engine");
    return *std::move(staged);
  }
};

class BnbStager final : public Stager {
 public:
  std::string name() const override { return "bnb"; }
  StagedCircuit stage(const Circuit& circuit, const MachineShape& shape,
                      const StagingOptions& options) const override {
    return stage_with_bnb(circuit, shape, options.bnb);
  }
};

class SnuqsStager final : public Stager {
 public:
  std::string name() const override { return "snuqs"; }
  StagedCircuit stage(const Circuit& circuit, const MachineShape& shape,
                      const StagingOptions&) const override {
    return stage_with_snuqs(circuit, shape);
  }
};

class AutoStager final : public Stager {
 public:
  std::string name() const override { return "auto"; }
  StagedCircuit stage(const Circuit& circuit, const MachineShape& shape,
                      const StagingOptions& options) const override {
    // The general MIP solver is exact but dense; reserve it for small
    // reduced models and use the specialized search otherwise.
    const ReducedCircuit rc = reduce(circuit);
    if (static_cast<int>(rc.gates.size()) <= 12 && circuit.num_qubits() <= 9) {
      auto staged = stage_with_ilp(circuit, shape, options.ilp);
      if (staged.has_value()) return *std::move(staged);
    }
    return stage_with_bnb(circuit, shape, options.bnb);
  }
};

}  // namespace

StagerRegistry& stager_registry() {
  static StagerRegistry* registry = [] {
    auto* r = new StagerRegistry("stager");
    r->add("ilp", [] { return std::make_shared<IlpStager>(); });
    r->add("bnb", [] { return std::make_shared<BnbStager>(); });
    r->add("snuqs", [] { return std::make_shared<SnuqsStager>(); });
    r->add("auto", [] { return std::make_shared<AutoStager>(); });
    return r;
  }();
  return *registry;
}

const char* stager_engine_name(StagerEngine engine) {
  switch (engine) {
    case StagerEngine::Auto: return "auto";
    case StagerEngine::Ilp: return "ilp";
    case StagerEngine::Bnb: return "bnb";
    case StagerEngine::SnuQS: return "snuqs";
  }
  throw Error("unknown stager engine");
}

}  // namespace atlas::staging
