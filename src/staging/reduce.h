#pragma once

/// \file reduce.h
/// Staging-model reduction. The ILP of Section IV has one F variable
/// per gate per stage; real circuits contain many gates that cannot
/// affect staging decisions. Two lossless reductions shrink the model:
///
/// 1. *Insular contraction* — a gate whose qubits are all insular
///    (cz, cp, rz, x, ... per Definition 2) imposes no locality
///    constraint; it is removed from the model and its dependency
///    edges are contracted. After staging it is assigned to the
///    earliest stage at which all its predecessors have executed.
/// 2. *Subsumption merge* — a gate j whose only predecessor is i with
///    NI(j) ⊆ NI(i) can always execute in i's stage (its qubit demand
///    adds nothing and its dependencies are satisfied), so it is
///    merged into i. Any staging of the merged model maps back to a
///    staging of the original with identical cost.

#include <cstdint>
#include <vector>

#include "ir/circuit.h"

namespace atlas::staging {

/// A gate in the reduced staging model. `ni_mask` has bit q set for
/// each non-insular qubit q (reduction requires <= 64 qubits, well
/// above any simulable circuit).
struct ReducedGate {
  std::uint64_t ni_mask = 0;
  std::vector<int> preds;     // indices of reduced gates (topo order)
  std::vector<int> originals; // original gate indices represented
};

struct ReducedCircuit {
  int num_qubits = 0;
  std::vector<ReducedGate> gates;  // topological (original) order
  /// reduced index of each original gate; -1 for contracted insular
  /// gates (they are re-inserted by assign_original_stages).
  std::vector<int> reduced_of_original;
};

/// Builds the reduced staging model of `circuit`.
ReducedCircuit reduce(const Circuit& circuit);

/// Maps a stage assignment of reduced gates back to all original
/// gates: contracted insular gates run at the earliest stage at which
/// all their predecessors are done. Returns stage index per original
/// gate.
std::vector<int> assign_original_stages(
    const Circuit& circuit, const ReducedCircuit& reduced,
    const std::vector<int>& stage_of_reduced);

}  // namespace atlas::staging
