#pragma once

/// \file stager.h
/// Public facade for circuit staging (the paper's STAGE algorithm).

#include "staging/bnb_stager.h"
#include "staging/ilp_stager.h"
#include "staging/stage.h"

namespace atlas::staging {

enum class StagerEngine {
  Auto,  // ILP for small reduced models, specialized B&B otherwise
  Ilp,   // paper-faithful ILP (Eq. 3-11) via the home-grown MIP solver
  Bnb,   // specialized branch-and-bound (scales to large circuits)
  SnuQS, // heuristic baseline (Fig. 9/12)
};

struct StagingOptions {
  StagerEngine engine = StagerEngine::Auto;
  IlpStagerOptions ilp;
  BnbStagerOptions bnb;
};

/// Stages `circuit` for `shape`; the result always passes
/// validate_staging(). Throws atlas::Error when no staging exists
/// (a gate with more non-insular qubits than local capacity).
StagedCircuit stage_circuit(const Circuit& circuit, const MachineShape& shape,
                            const StagingOptions& options = {});

}  // namespace atlas::staging
