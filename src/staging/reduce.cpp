#include "staging/reduce.h"

#include <algorithm>

#include "common/error.h"

namespace atlas::staging {
namespace {

std::uint64_t ni_mask_of(const Gate& g) {
  std::uint64_t m = 0;
  for (Qubit q : g.non_insular_qubits()) {
    ATLAS_CHECK(q < 64, "staging reduction supports < 64 qubits");
    m |= std::uint64_t{1} << q;
  }
  return m;
}

void sort_unique(std::vector<int>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

ReducedCircuit reduce(const Circuit& circuit) {
  const int ng = circuit.num_gates();
  const auto preds = circuit.predecessors();

  ReducedCircuit out;
  out.num_qubits = circuit.num_qubits();
  out.reduced_of_original.assign(ng, -1);

  // For each original gate, its nearest non-contracted ancestors
  // (expressed as *reduced* indices). Insular gates forward the union
  // of their predecessors' ancestor sets.
  std::vector<std::vector<int>> anc(ng);

  for (int g = 0; g < ng; ++g) {
    std::vector<int> a;
    for (int p : preds[g]) {
      if (out.reduced_of_original[p] >= 0) {
        a.push_back(out.reduced_of_original[p]);
      } else {
        a.insert(a.end(), anc[p].begin(), anc[p].end());
      }
    }
    sort_unique(a);

    const std::uint64_t ni = ni_mask_of(circuit.gate(g));
    if (ni == 0) {
      // Fully insular: contract.
      anc[g] = std::move(a);
      continue;
    }

    // Subsumption merge: single reduced predecessor whose qubit demand
    // covers ours.
    if (a.size() == 1) {
      ReducedGate& host = out.gates[a[0]];
      if ((ni | host.ni_mask) == host.ni_mask) {
        host.originals.push_back(g);
        out.reduced_of_original[g] = a[0];
        anc[g] = {a[0]};
        continue;
      }
    }

    ReducedGate rg;
    rg.ni_mask = ni;
    rg.preds = a;
    rg.originals = {g};
    out.reduced_of_original[g] = static_cast<int>(out.gates.size());
    anc[g] = {out.reduced_of_original[g]};
    out.gates.push_back(std::move(rg));
  }
  return out;
}

std::vector<int> assign_original_stages(
    const Circuit& circuit, const ReducedCircuit& reduced,
    const std::vector<int>& stage_of_reduced) {
  ATLAS_CHECK(stage_of_reduced.size() == reduced.gates.size(),
              "stage assignment size mismatch");
  const int ng = circuit.num_gates();
  const auto preds = circuit.predecessors();
  std::vector<int> stage(ng, -1);
  for (int g = 0; g < ng; ++g) {
    const int r = reduced.reduced_of_original[g];
    if (r >= 0) {
      stage[g] = stage_of_reduced[r];
    } else {
      int s = 0;
      for (int p : preds[g]) s = std::max(s, stage[p]);
      stage[g] = s;
    }
    // Dependencies must already be satisfied by the reduced staging.
    for (int p : preds[g])
      ATLAS_CHECK(stage[p] <= stage[g],
                  "reduced staging violates dependency " << p << "->" << g);
  }
  return stage;
}

}  // namespace atlas::staging
