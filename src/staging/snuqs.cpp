#include "staging/snuqs.h"

#include <algorithm>
#include <numeric>

#include "common/bits.h"
#include "common/error.h"

namespace atlas::staging {

StagedCircuit stage_with_snuqs(const Circuit& circuit,
                               const MachineShape& shape) {
  ATLAS_CHECK(shape.total() == circuit.num_qubits(), "shape/circuit mismatch");
  const int n = circuit.num_qubits();
  const int ng = circuit.num_gates();
  const auto preds = circuit.predecessors();
  std::vector<std::vector<int>> succs(ng);
  std::vector<int> indeg(ng, 0);
  for (int g = 0; g < ng; ++g)
    for (int p : preds[g]) {
      succs[p].push_back(g);
      ++indeg[g];
    }
  for (int g = 0; g < ng; ++g)
    ATLAS_CHECK(static_cast<int>(circuit.gate(g).non_insular_qubits().size()) <=
                    shape.num_local,
                "gate exceeds local capacity; no staging exists");

  std::vector<bool> done(ng, false);
  int remaining = ng;
  StagedCircuit out;

  while (remaining > 0) {
    // Score qubits over the remaining gates.
    std::vector<int> ni_count(n, 0), total_count(n, 0);
    for (int g = 0; g < ng; ++g) {
      if (done[g]) continue;
      for (Qubit q : circuit.gate(g).non_insular_qubits()) ++ni_count[q];
      for (Qubit q : circuit.gate(g).qubits()) ++total_count[q];
    }
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      if (ni_count[a] != ni_count[b]) return ni_count[a] > ni_count[b];
      return total_count[a] > total_count[b];
    });
    std::vector<bool> is_local(n, false);
    for (int i = 0; i < shape.num_local; ++i) is_local[order[i]] = true;

    // Execute the down-closed closure under this local set.
    std::vector<int> ready;
    for (int g = 0; g < ng; ++g)
      if (!done[g] && indeg[g] == 0) ready.push_back(g);
    Stage stage;
    auto try_run = [&](int g) {
      for (Qubit q : circuit.gate(g).non_insular_qubits())
        if (!is_local[q]) return false;
      return true;
    };
    std::vector<int> blocked;
    while (!ready.empty()) {
      const int g = ready.back();
      ready.pop_back();
      if (!try_run(g)) {
        blocked.push_back(g);
        continue;
      }
      done[g] = true;
      --remaining;
      stage.gate_indices.push_back(g);
      for (int s : succs[g])
        if (!done[s] && --indeg[s] == 0) ready.push_back(s);
    }
    // The greedy qubit choice can stall (no ready gate fits). Force
    // progress by making the first blocked gate's qubits local in
    // place of the lowest-scoring locals, then retry next round.
    if (stage.gate_indices.empty()) {
      ATLAS_CHECK(!blocked.empty(), "no ready gates but work remains");
      const int g = blocked.front();
      int replace_at = shape.num_local - 1;
      for (Qubit q : circuit.gate(g).non_insular_qubits()) {
        if (is_local[q]) continue;
        while (replace_at >= 0) {
          const Qubit victim = order[replace_at--];
          if (!circuit.gate(g).acts_on(victim) && is_local[victim]) {
            is_local[victim] = false;
            is_local[q] = true;
            break;
          }
        }
      }
      // Re-run the closure with the adjusted set.
      ready = blocked;
      blocked.clear();
      // Also re-add gates unblocked earlier this round: recompute ready.
      ready.clear();
      for (int g2 = 0; g2 < ng; ++g2)
        if (!done[g2] && indeg[g2] == 0) ready.push_back(g2);
      while (!ready.empty()) {
        const int g2 = ready.back();
        ready.pop_back();
        if (!try_run(g2)) continue;
        done[g2] = true;
        --remaining;
        stage.gate_indices.push_back(g2);
        for (int s : succs[g2])
          if (!done[s] && --indeg[s] == 0) ready.push_back(s);
      }
      ATLAS_CHECK(!stage.gate_indices.empty(),
                  "snuqs stager cannot make progress");
    }
    // Preserve original gate order within the stage.
    std::sort(stage.gate_indices.begin(), stage.gate_indices.end());

    // Partition: locals from the greedy choice; the heuristic does not
    // optimize the regional/global split, so assign the remainder in
    // qubit order (regional first).
    for (int q = 0; q < n; ++q) {
      if (is_local[q]) stage.partition.local.push_back(q);
      else if (static_cast<int>(stage.partition.regional.size()) <
               shape.num_regional)
        stage.partition.regional.push_back(q);
      else
        stage.partition.global.push_back(q);
    }
    out.stages.push_back(std::move(stage));
  }
  out.comm_cost = communication_cost(out.stages, shape.cost_factor);
  return out;
}

}  // namespace atlas::staging
