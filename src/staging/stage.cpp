#include "staging/stage.h"

#include <algorithm>
#include <unordered_set>

#include "common/error.h"

namespace atlas::staging {
namespace {

std::unordered_set<Qubit> to_set(const std::vector<Qubit>& v) {
  return {v.begin(), v.end()};
}

}  // namespace

bool QubitPartition::is_local(Qubit q) const {
  return std::find(local.begin(), local.end(), q) != local.end();
}

bool QubitPartition::is_global(Qubit q) const {
  return std::find(global.begin(), global.end(), q) != global.end();
}

double communication_cost(const std::vector<Stage>& stages,
                          double cost_factor) {
  double cost = 0;
  for (std::size_t k = 1; k < stages.size(); ++k) {
    const auto prev_local = to_set(stages[k - 1].partition.local);
    const auto prev_global = to_set(stages[k - 1].partition.global);
    for (Qubit q : stages[k].partition.local)
      if (!prev_local.count(q)) cost += 1.0;
    for (Qubit q : stages[k].partition.global)
      if (!prev_global.count(q)) cost += cost_factor;
  }
  return cost;
}

void validate_staging(const Circuit& circuit, const StagedCircuit& staged,
                      const MachineShape& shape) {
  ATLAS_CHECK(shape.total() == circuit.num_qubits(),
              "machine shape totals " << shape.total() << " qubits, circuit has "
                                      << circuit.num_qubits());
  // Gate coverage: each gate exactly once, stages in dependency order.
  std::vector<int> stage_of_gate(circuit.num_gates(), -1);
  for (std::size_t k = 0; k < staged.stages.size(); ++k) {
    for (int gi : staged.stages[k].gate_indices) {
      ATLAS_CHECK(gi >= 0 && gi < circuit.num_gates(), "bad gate index " << gi);
      ATLAS_CHECK(stage_of_gate[gi] < 0, "gate " << gi << " staged twice");
      stage_of_gate[gi] = static_cast<int>(k);
    }
  }
  for (int gi = 0; gi < circuit.num_gates(); ++gi)
    ATLAS_CHECK(stage_of_gate[gi] >= 0, "gate " << gi << " never staged");

  // Dependencies: a gate's stage must be >= its predecessors' stages
  // (down-closedness of stage prefixes).
  for (const auto& [a, b] : circuit.dependency_edges())
    ATLAS_CHECK(stage_of_gate[a] <= stage_of_gate[b],
                "dependency violated: gate " << a << " (stage "
                                             << stage_of_gate[a]
                                             << ") must precede gate " << b
                                             << " (stage " << stage_of_gate[b]
                                             << ")");

  for (std::size_t k = 0; k < staged.stages.size(); ++k) {
    const QubitPartition& p = staged.stages[k].partition;
    ATLAS_CHECK(static_cast<int>(p.local.size()) == shape.num_local,
                "stage " << k << " has " << p.local.size()
                         << " local qubits, expected " << shape.num_local);
    ATLAS_CHECK(static_cast<int>(p.regional.size()) == shape.num_regional,
                "stage " << k << " regional size mismatch");
    ATLAS_CHECK(static_cast<int>(p.global.size()) == shape.num_global,
                "stage " << k << " global size mismatch");
    // Partition covers every qubit exactly once.
    std::vector<int> seen(circuit.num_qubits(), 0);
    for (Qubit q : p.local) seen.at(q)++;
    for (Qubit q : p.regional) seen.at(q)++;
    for (Qubit q : p.global) seen.at(q)++;
    for (int q = 0; q < circuit.num_qubits(); ++q)
      ATLAS_CHECK(seen[q] == 1, "stage " << k << ": qubit " << q
                                         << " appears " << seen[q]
                                         << " times in the partition");
    // Locality: non-insular qubits of each staged gate are local.
    const auto local = to_set(p.local);
    for (int gi : staged.stages[k].gate_indices)
      for (Qubit q : circuit.gate(gi).non_insular_qubits())
        ATLAS_CHECK(local.count(q), "stage " << k << ": gate " << gi << " ("
                                             << circuit.gate(gi).to_string()
                                             << ") has non-insular qubit " << q
                                             << " outside the local set");
  }
}

}  // namespace atlas::staging
