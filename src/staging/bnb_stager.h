#pragma once

/// \file bnb_stager.h
/// The scalable circuit-staging engine: a purpose-built branch-and-
/// bound search over per-stage local qubit sets that solves the same
/// constrained optimization problem as the ILP of Section IV.
///
/// Why it exists: the paper hands Eq. (3)-(11) to HiGHS; our from-
/// scratch MIP solver (ilp_stager.h) handles the small and medium
/// models but not the largest circuits (thousands of F variables).
/// This engine exploits two structural facts the general solver cannot:
///
///  * given the per-stage local sets, the optimal gate assignment F is
///    the greedy down-closed closure (executing a gate as early as
///    possible never hurts feasibility and never changes the cost,
///    which depends only on the qubit sets);
///  * therefore the search space is the sequence of local sets, a few
///    hundred binary decisions rather than tens of thousands.
///
/// The search minimizes the stage count first (iterative deepening, an
/// admissible ceil(|remaining qubit union|/L) bound, memoized failed
/// frontiers) and the Eq. (2) communication cost second (multiple
/// solution samples + Belady-style regional/global assignment). It is
/// cross-validated against the exact ILP on small circuits in
/// tests/test_staging.cpp.

#include "staging/reduce.h"
#include "staging/stage.h"

namespace atlas::staging {

struct BnbStagerOptions {
  int max_stages = 64;
  int beam_width = 8;        // candidate local sets per search node
  int max_solutions = 8;     // full stagings sampled for cost selection
  long node_budget = 100000; // search nodes before falling back to greedy
};

StagedCircuit stage_with_bnb(const Circuit& circuit,
                             const MachineShape& shape,
                             const BnbStagerOptions& options = {});

}  // namespace atlas::staging
