#include "staging/ilp_stager.h"

#include <algorithm>

#include "common/bits.h"
#include "common/error.h"
#include "ilp/solver.h"

namespace atlas::staging {
namespace {

struct ModelVars {
  // Indexed [q][k] / [g][k].
  std::vector<std::vector<int>> A, B, S, T, F;
};

/// Builds the Eq. (3)-(11) model for a fixed stage count s.
ModelVars build_model(ilp::IlpModel& m, const ReducedCircuit& rc,
                      const MachineShape& shape, int s) {
  const int n = rc.num_qubits;
  const int ng = static_cast<int>(rc.gates.size());
  ModelVars v;
  v.A.assign(n, std::vector<int>(s));
  v.B.assign(n, std::vector<int>(s));
  v.S.assign(n, std::vector<int>(std::max(0, s - 1)));
  v.T.assign(n, std::vector<int>(std::max(0, s - 1)));
  v.F.assign(ng, std::vector<int>(s));

  for (int q = 0; q < n; ++q)
    for (int k = 0; k < s; ++k) {
      v.A[q][k] = m.add_binary(0, "A_" + std::to_string(q) + "_" + std::to_string(k));
      v.B[q][k] = m.add_binary(0, "B_" + std::to_string(q) + "_" + std::to_string(k));
    }
  for (int q = 0; q < n; ++q)
    for (int k = 0; k + 1 < s; ++k) {
      // Objective (3): minimize sum of S + c*T.
      v.S[q][k] = m.add_binary(1.0, "S_" + std::to_string(q) + "_" + std::to_string(k));
      v.T[q][k] = m.add_binary(shape.cost_factor,
                               "T_" + std::to_string(q) + "_" + std::to_string(k));
    }
  for (int g = 0; g < ng; ++g)
    for (int k = 0; k < s; ++k)
      v.F[g][k] = m.add_binary(0, "F_" + std::to_string(g) + "_" + std::to_string(k));

  for (int q = 0; q < n; ++q) {
    for (int k = 0; k + 1 < s; ++k) {
      // (4): A_{q,k+1} <= A_{q,k} + S_{q,k}.
      m.add_le_sum(v.A[q][k + 1], {v.A[q][k], v.S[q][k]});
      // (5): B_{q,k+1} <= B_{q,k} + T_{q,k}.
      m.add_le_sum(v.B[q][k + 1], {v.B[q][k], v.T[q][k]});
    }
    for (int k = 0; k < s; ++k) {
      // (10): not local and global at once.
      m.add_constraint({v.A[q][k], v.B[q][k]}, {1, 1}, lp::RowSense::LessEq, 1);
    }
  }
  for (int k = 0; k < s; ++k) {
    // (11): exactly L local and G global qubits per stage.
    std::vector<int> avars, bvars;
    for (int q = 0; q < n; ++q) {
      avars.push_back(v.A[q][k]);
      bvars.push_back(v.B[q][k]);
    }
    m.add_constraint(avars, std::vector<double>(n, 1.0), lp::RowSense::Eq,
                     shape.num_local);
    m.add_constraint(bvars, std::vector<double>(n, 1.0), lp::RowSense::Eq,
                     shape.num_global);
  }
  for (int g = 0; g < ng; ++g) {
    for (int k = 0; k + 1 < s; ++k) {
      // (6): F monotone in k.
      m.add_le_sum(v.F[g][k], {v.F[g][k + 1]});
    }
    // (7): locality — a gate finishes at stage k only if its
    // non-insular qubits are local at k (or it already finished).
    for (int q = 0; q < rc.num_qubits; ++q) {
      if (!test_bit(rc.gates[g].ni_mask, q)) continue;
      m.add_le_sum(v.F[g][0], {v.A[q][0]});
      for (int k = 1; k < s; ++k)
        m.add_le_sum(v.F[g][k], {v.F[g][k - 1], v.A[q][k]});
    }
    // (8): dependencies.
    for (int p : rc.gates[g].preds)
      for (int k = 0; k < s; ++k) m.add_le_sum(v.F[g][k], {v.F[p][k]});
    // (9): all gates finish.
    m.add_constraint({v.F[g][s - 1]}, {1}, lp::RowSense::GreaterEq, 1);
  }
  return v;
}

}  // namespace

std::optional<StagedCircuit> stage_with_ilp(const Circuit& circuit,
                                            const MachineShape& shape,
                                            const IlpStagerOptions& options) {
  ATLAS_CHECK(shape.total() == circuit.num_qubits(), "shape/circuit mismatch");
  const ReducedCircuit rc = reduce(circuit);
  for (const auto& g : rc.gates)
    ATLAS_CHECK(popcount(g.ni_mask) <= shape.num_local,
                "a gate touches more non-insular qubits than there are "
                "local qubits; no staging exists");

  for (int s = 1; s <= options.max_stages; ++s) {
    ilp::IlpModel model;
    const ModelVars vars = build_model(model, rc, shape, s);
    const ilp::IlpSolution sol = model.solve(options.node_budget);
    if (sol.status == ilp::IlpStatus::Infeasible) continue;
    if (sol.status == ilp::IlpStatus::NodeLimit) return std::nullopt;

    // Extract stages (Algorithm 2, line 5): gate g runs at
    // min{k : F_{g,k} = 1}; qubit q is local iff A=1, global iff B=1.
    const int ng = static_cast<int>(rc.gates.size());
    std::vector<int> stage_of_reduced(ng, s - 1);
    int used_stages = 1;
    for (int g = 0; g < ng; ++g)
      for (int k = 0; k < s; ++k)
        if (sol.x[vars.F[g][k]]) {
          stage_of_reduced[g] = k;
          used_stages = std::max(used_stages, k + 1);
          break;
        }
    if (ng == 0) used_stages = 1;

    const std::vector<int> stage_of_original =
        assign_original_stages(circuit, rc, stage_of_reduced);

    StagedCircuit staged;
    staged.stages.resize(used_stages);
    for (int k = 0; k < used_stages; ++k) {
      QubitPartition& p = staged.stages[k].partition;
      for (int q = 0; q < circuit.num_qubits(); ++q) {
        if (sol.x[vars.A[q][k]]) p.local.push_back(q);
        else if (sol.x[vars.B[q][k]]) p.global.push_back(q);
        else p.regional.push_back(q);
      }
    }
    for (int g = 0; g < circuit.num_gates(); ++g)
      staged.stages[stage_of_original[g]].gate_indices.push_back(g);
    staged.comm_cost = communication_cost(staged.stages, shape.cost_factor);
    return staged;
  }
  throw Error("no feasible staging within max_stages");
}

}  // namespace atlas::staging
