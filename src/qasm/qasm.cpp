#include "qasm/qasm.h"

#include <cctype>
#include <cmath>
#include <fstream>
#include <numbers>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/error.h"

namespace atlas::qasm {
namespace {

/// Recursive-descent evaluator for gate parameter expressions. Yields a
/// Param: identifiers declared via `input float` become free symbols,
/// so the result stays affine ("2*theta + pi/2"); products or quotients
/// of two symbolic subexpressions throw through Param's operators.
class ExprParser {
 public:
  ExprParser(const std::string& text,
             const std::unordered_set<std::string>& symbols)
      : text_(text), symbols_(symbols) {}

  Param parse() {
    const Param v = expr();
    skip_ws();
    ATLAS_CHECK_ARG(pos_ == text_.size(), "trailing characters in expression '"
                                          << text_ << "'");
    return v;
  }

 private:
  Param expr() {
    Param v = term();
    for (;;) {
      skip_ws();
      if (consume('+')) {
        v += term();
      } else if (consume('-')) {
        v -= term();
      } else {
        return v;
      }
    }
  }

  Param term() {
    Param v = unary();
    for (;;) {
      skip_ws();
      if (consume('*')) {
        v = v * unary();
      } else if (consume('/')) {
        v = v / unary();
      } else {
        return v;
      }
    }
  }

  Param unary() {
    skip_ws();
    if (consume('-')) return -unary();
    if (consume('+')) return unary();
    return atom();
  }

  Param atom() {
    skip_ws();
    if (consume('(')) {
      const Param v = expr();
      skip_ws();
      ATLAS_CHECK_ARG(consume(')'), "missing ')' in expression '" << text_ << "'");
      return v;
    }
    if (pos_ < text_.size() &&
        (std::isalpha(text_[pos_]) != 0 || text_[pos_] == '_')) {
      std::string ident;
      while (pos_ < text_.size() &&
             (std::isalnum(text_[pos_]) != 0 || text_[pos_] == '_'))
        ident += text_[pos_++];
      if (ident == "pi") return Param(std::numbers::pi);
      ATLAS_CHECK_ARG(symbols_.count(ident) != 0,
                  "unknown identifier '"
                      << ident
                      << "' in expression (declare it with 'input float "
                      << ident << ";')");
      return Param::symbol(ident);
    }
    std::size_t used = 0;
    const std::string rest = text_.substr(pos_);
    double v = 0;
    try {
      v = std::stod(rest, &used);
    } catch (const std::exception&) {
      throw Error("bad numeric literal in expression '" + text_ + "'",
                  ErrorCode::invalid_argument);
    }
    pos_ += used;
    return Param(v);
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(text_[pos_]) != 0) ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  const std::string& text_;
  const std::unordered_set<std::string>& symbols_;
  std::size_t pos_ = 0;
};

Param eval_expr(const std::string& text,
                const std::unordered_set<std::string>& symbols) {
  return ExprParser(text, symbols).parse();
}

struct Statement {
  std::string name;
  std::vector<Param> params;
  std::vector<int> qubits;  // in source order
};

/// Splits "name(p1,p2) q[0], q[3];" into its parts. Returns false for
/// statements that declare nothing to execute (barrier/measure/creg...).
class LineParser {
 public:
  LineParser(const std::string& line, int line_no, const std::string& qreg,
             const std::unordered_set<std::string>& symbols)
      : line_(line), line_no_(line_no), qreg_(qreg), symbols_(symbols) {}

  Statement parse() {
    Statement st;
    st.name = ident();
    skip_ws();
    if (peek() == '(') st.params = param_list();
    st.qubits = qubit_list();
    return st;
  }

 private:
  std::string ident() {
    skip_ws();
    std::string s;
    while (pos_ < line_.size() &&
           (std::isalnum(line_[pos_]) != 0 || line_[pos_] == '_'))
      s += line_[pos_++];
    ATLAS_CHECK_ARG(!s.empty(), "line " << line_no_ << ": expected identifier");
    return s;
  }

  std::vector<Param> param_list() {
    expect('(');
    std::vector<Param> params;
    std::string current;
    int depth = 1;
    while (pos_ < line_.size() && depth > 0) {
      const char c = line_[pos_++];
      if (c == '(') {
        ++depth;
        current += c;
      } else if (c == ')') {
        --depth;
        if (depth > 0) current += c;
      } else if (c == ',' && depth == 1) {
        params.push_back(eval_expr(current, symbols_));
        current.clear();
      } else {
        current += c;
      }
    }
    ATLAS_CHECK_ARG(depth == 0, "line " << line_no_ << ": unbalanced parens");
    params.push_back(eval_expr(current, symbols_));
    return params;
  }

  std::vector<int> qubit_list() {
    std::vector<int> qubits;
    for (;;) {
      skip_ws();
      const std::string reg = ident();
      ATLAS_CHECK_ARG(reg == qreg_, "line " << line_no_ << ": unknown register '"
                                        << reg << "'");
      expect('[');
      qubits.push_back(number());
      expect(']');
      skip_ws();
      if (pos_ < line_.size() && line_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    return qubits;
  }

  int number() {
    skip_ws();
    std::string s;
    while (pos_ < line_.size() && std::isdigit(line_[pos_]) != 0)
      s += line_[pos_++];
    ATLAS_CHECK_ARG(!s.empty(), "line " << line_no_ << ": expected number");
    return std::stoi(s);
  }

  void expect(char c) {
    skip_ws();
    ATLAS_CHECK_ARG(pos_ < line_.size() && line_[pos_] == c,
                "line " << line_no_ << ": expected '" << c << "'");
    ++pos_;
  }

  char peek() const { return pos_ < line_.size() ? line_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < line_.size() && std::isspace(line_[pos_]) != 0) ++pos_;
  }

  const std::string& line_;
  std::size_t pos_ = 0;
  int line_no_;
  const std::string& qreg_;
  const std::unordered_set<std::string>& symbols_;
};

Gate make_gate(const Statement& st, int line_no) {
  const auto& q = st.qubits;
  const auto& p = st.params;
  auto need = [&](std::size_t nq, std::size_t np) {
    ATLAS_CHECK_ARG(q.size() == nq && p.size() == np,
                "line " << line_no << ": gate '" << st.name
                        << "' expects " << nq << " qubits / " << np
                        << " params, got " << q.size() << "/" << p.size());
  };
  const std::string& n = st.name;
  if (n == "h") { need(1, 0); return Gate::h(q[0]); }
  if (n == "x") { need(1, 0); return Gate::x(q[0]); }
  if (n == "y") { need(1, 0); return Gate::y(q[0]); }
  if (n == "z") { need(1, 0); return Gate::z(q[0]); }
  if (n == "s") { need(1, 0); return Gate::s(q[0]); }
  if (n == "sdg") { need(1, 0); return Gate::sdg(q[0]); }
  if (n == "t") { need(1, 0); return Gate::t(q[0]); }
  if (n == "tdg") { need(1, 0); return Gate::tdg(q[0]); }
  if (n == "sx") { need(1, 0); return Gate::sx(q[0]); }
  if (n == "rx") { need(1, 1); return Gate::rx(q[0], p[0]); }
  if (n == "ry") { need(1, 1); return Gate::ry(q[0], p[0]); }
  if (n == "rz") { need(1, 1); return Gate::rz(q[0], p[0]); }
  if (n == "p" || n == "u1") { need(1, 1); return Gate::p(q[0], p[0]); }
  if (n == "u2") { need(1, 2); return Gate::u2(q[0], p[0], p[1]); }
  if (n == "u3" || n == "u") { need(1, 3); return Gate::u3(q[0], p[0], p[1], p[2]); }
  if (n == "cx" || n == "CX") { need(2, 0); return Gate::cx(q[0], q[1]); }
  if (n == "cy") { need(2, 0); return Gate::cy(q[0], q[1]); }
  if (n == "cz") { need(2, 0); return Gate::cz(q[0], q[1]); }
  if (n == "ch") { need(2, 0); return Gate::ch(q[0], q[1]); }
  if (n == "cp" || n == "cu1") { need(2, 1); return Gate::cp(q[0], q[1], p[0]); }
  if (n == "crx") { need(2, 1); return Gate::crx(q[0], q[1], p[0]); }
  if (n == "cry") { need(2, 1); return Gate::cry(q[0], q[1], p[0]); }
  if (n == "crz") { need(2, 1); return Gate::crz(q[0], q[1], p[0]); }
  if (n == "swap") { need(2, 0); return Gate::swap(q[0], q[1]); }
  if (n == "rzz") { need(2, 1); return Gate::rzz(q[0], q[1], p[0]); }
  if (n == "rxx") { need(2, 1); return Gate::rxx(q[0], q[1], p[0]); }
  if (n == "ccx") { need(3, 0); return Gate::ccx(q[0], q[1], q[2]); }
  if (n == "ccz") { need(3, 0); return Gate::ccz(q[0], q[1], q[2]); }
  if (n == "cswap") { need(3, 0); return Gate::cswap(q[0], q[1], q[2]); }
  throw Error("line " + std::to_string(line_no) + ": unsupported gate '" + n +
              "'",
                ErrorCode::invalid_argument);
}

}  // namespace

/// Parses the tail of an `input float theta, phi;` declaration
/// (OpenQASM 3 style): optional width suffix on the type, then a
/// comma-separated identifier list.
void parse_input_declaration(const std::string& stmt, int line_no,
                             std::unordered_set<std::string>& symbols) {
  std::size_t pos = 5;  // past "input"
  auto skip_ws = [&] {
    while (pos < stmt.size() && std::isspace(stmt[pos]) != 0) ++pos;
  };
  auto ident = [&] {
    skip_ws();
    std::string s;
    while (pos < stmt.size() &&
           (std::isalnum(stmt[pos]) != 0 || stmt[pos] == '_'))
      s += stmt[pos++];
    ATLAS_CHECK_ARG(!s.empty() && (std::isalpha(s[0]) != 0 || s[0] == '_'),
                "line " << line_no << ": expected identifier in input "
                                      "declaration");
    return s;
  };
  const std::string type = ident();
  ATLAS_CHECK_ARG(type == "float" || type == "angle",
              "line " << line_no << ": unsupported input type '" << type
                      << "' (want float or angle)");
  skip_ws();
  if (pos < stmt.size() && stmt[pos] == '[') {  // width suffix: float[64]
    const std::size_t close = stmt.find(']', pos);
    ATLAS_CHECK_ARG(close != std::string::npos,
                "line " << line_no << ": unterminated type width");
    pos = close + 1;
  }
  for (;;) {
    const std::string name = ident();
    ATLAS_CHECK_ARG(name != "pi", "line " << line_no
                                      << ": 'pi' is a reserved constant");
    ATLAS_CHECK_ARG(symbols.insert(name).second,
                "line " << line_no << ": duplicate input declaration '"
                        << name << "'");
    skip_ws();
    if (pos < stmt.size() && stmt[pos] == ',') {
      ++pos;
      continue;
    }
    break;
  }
  skip_ws();
  ATLAS_CHECK_ARG(pos == stmt.size(), "line " << line_no
                                          << ": malformed input declaration");
}

Circuit parse(const std::string& source) { return parse(source, nullptr); }

Circuit parse(const std::string& source, std::vector<int>* gate_lines) {
  std::string qreg_name;
  int num_qubits = -1;
  std::vector<Statement> statements;
  std::unordered_set<std::string> symbols;

  // Split on ';', tracking line numbers for diagnostics.
  int line_no = 1;
  std::string stmt;
  std::vector<std::pair<std::string, int>> raw;
  bool in_comment = false;
  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    if (c == '\n') {
      ++line_no;
      in_comment = false;
      continue;
    }
    if (in_comment) continue;
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      in_comment = true;
      ++i;
      continue;
    }
    if (c == '#') {
      // Pragma lines carry no ';' and are invisible to the base
      // parser; parse_with_noise() reads the atlas noise ones.
      in_comment = true;
      continue;
    }
    if (c == ';') {
      raw.emplace_back(stmt, line_no);
      stmt.clear();
    } else {
      stmt += c;
    }
  }
  {
    // Anything after the last ';' must be whitespace.
    for (char c : stmt)
      ATLAS_CHECK_ARG(std::isspace(c) != 0, "line " << line_no
                                                << ": unterminated statement");
  }

  Circuit circuit;
  bool have_circuit = false;
  for (auto& [text, ln] : raw) {
    // Trim.
    std::size_t b = text.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    std::size_t e = text.find_last_not_of(" \t\r");
    std::string s = text.substr(b, e - b + 1);
    if (s.rfind("OPENQASM", 0) == 0) continue;
    if (s.rfind("include", 0) == 0) continue;
    if (s.rfind("creg", 0) == 0) continue;
    if (s.rfind("barrier", 0) == 0) continue;
    if (s.rfind("measure", 0) == 0) continue;
    if (s.rfind("input", 0) == 0 &&
        (s.size() == 5 || std::isspace(s[5]) != 0)) {
      parse_input_declaration(s, ln, symbols);
      continue;
    }
    if (s.rfind("qreg", 0) == 0) {
      ATLAS_CHECK_ARG(num_qubits < 0, "line " << ln << ": multiple qreg");
      const std::size_t lb = s.find('[');
      const std::size_t rb = s.find(']');
      ATLAS_CHECK_ARG(lb != std::string::npos && rb != std::string::npos && rb > lb,
                  "line " << ln << ": malformed qreg");
      std::string name = s.substr(4, lb - 4);
      name.erase(0, name.find_first_not_of(" \t"));
      name.erase(name.find_last_not_of(" \t") + 1);
      qreg_name = name;
      num_qubits = std::stoi(s.substr(lb + 1, rb - lb - 1));
      circuit = Circuit(num_qubits);
      have_circuit = true;
      continue;
    }
    ATLAS_CHECK_ARG(have_circuit, "line " << ln << ": gate before qreg");
    const Statement st = LineParser(s, ln, qreg_name, symbols).parse();
    circuit.add(make_gate(st, ln));
    if (gate_lines != nullptr) gate_lines->push_back(ln);
  }
  ATLAS_CHECK_ARG(have_circuit, "no qreg declaration found");
  return circuit;
}

Circuit parse_file(const std::string& path) {
  std::ifstream in(path);
  ATLAS_CHECK_ARG(in.good(), "cannot open " << path);
  std::ostringstream os;
  os << in.rdbuf();
  Circuit c = parse(os.str());
  c.set_name(path);
  return c;
}

namespace {

/// Cursor over one pragma line's tail (after "#pragma atlas noise").
class PragmaParser {
 public:
  PragmaParser(const std::string& text, int line_no)
      : text_(text), line_no_(line_no) {}

  void parse_into(noise::NoiseModel& model) {
    const std::string channel = identifier("channel name");
    expect('(');
    const double arg0 = number();
    double arg1 = 0;
    const bool two_args = consume(',');
    if (two_args) arg1 = number();
    expect(')');

    if (channel == "readout") {
      ATLAS_CHECK_ARG(two_args, "line " << line_no_
                                    << ": readout takes (p01, p10)");
      apply_readout(model, arg0, arg1);
      return;
    }
    ATLAS_CHECK_ARG(!two_args, "line " << line_no_ << ": channel '" << channel
                                   << "' takes one argument");
    apply_channel(model, make_channel(channel, arg0));
  }

 private:
  noise::KrausChannel make_channel(const std::string& name, double p) {
    if (name == "depolarizing") return noise::KrausChannel::depolarizing(p);
    if (name == "depolarizing2") return noise::KrausChannel::depolarizing2(p);
    if (name == "bit_flip") return noise::KrausChannel::bit_flip(p);
    if (name == "phase_flip") return noise::KrausChannel::phase_flip(p);
    if (name == "bit_phase_flip")
      return noise::KrausChannel::bit_phase_flip(p);
    if (name == "amplitude_damping")
      return noise::KrausChannel::amplitude_damping(p);
    if (name == "phase_damping")
      return noise::KrausChannel::phase_damping(p);
    throw Error("line " + std::to_string(line_no_) +
                ": unknown noise channel '" + name + "'",
                ErrorCode::invalid_argument);
  }

  void apply_channel(noise::NoiseModel& model, noise::KrausChannel ch) {
    const std::string target = identifier("target (all/gate/qubit)");
    if (target == "all") {
      model.after_all_gates(std::move(ch));
    } else if (target == "gate") {
      model.after_gate(identifier("gate name"), std::move(ch));
    } else if (target == "qubit") {
      model.on_qubit(integer(), std::move(ch));
    } else {
      throw Error("line " + std::to_string(line_no_) +
                  ": bad noise target '" + target +
                  "' (expected all, gate <name> or qubit <k>)",
                ErrorCode::invalid_argument);
    }
    end();
  }

  void apply_readout(noise::NoiseModel& model, double p01, double p10) {
    const std::string target = identifier("target (all/qubit)");
    if (target == "all") {
      model.readout_error_all(p01, p10);
    } else if (target == "qubit") {
      model.readout_error(integer(), p01, p10);
    } else {
      throw Error("line " + std::to_string(line_no_) +
                  ": bad readout target '" + target +
                  "' (expected all or qubit <k>)",
                ErrorCode::invalid_argument);
    }
    end();
  }

  std::string identifier(const char* what) {
    skip_ws();
    std::string s;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '_'))
      s += text_[pos_++];
    ATLAS_CHECK_ARG(!s.empty(),
                "line " << line_no_ << ": expected " << what
                        << " in noise pragma");
    return s;
  }

  double number() {
    skip_ws();
    std::size_t used = 0;
    double v = 0;
    try {
      v = std::stod(text_.substr(pos_), &used);
    } catch (const std::exception&) {
      throw Error("line " + std::to_string(line_no_) +
                  ": bad number in noise pragma",
                ErrorCode::invalid_argument);
    }
    pos_ += used;
    return v;
  }

  int integer() {
    const double v = number();
    ATLAS_CHECK_ARG(v >= 0 && v == static_cast<int>(v),
                "line " << line_no_
                        << ": qubit index must be a non-negative integer");
    return static_cast<int>(v);
  }

  void expect(char c) {
    ATLAS_CHECK_ARG(consume(c), "line " << line_no_ << ": expected '" << c
                                    << "' in noise pragma");
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void end() {
    skip_ws();
    ATLAS_CHECK_ARG(pos_ == text_.size(), "line "
                                          << line_no_
                                          << ": trailing characters in noise "
                                             "pragma: '"
                                          << text_.substr(pos_) << "'");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  std::string text_;  // owned: callers pass substr temporaries
  int line_no_;
  std::size_t pos_ = 0;
};

std::string trimmed(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

NoisyParse parse_with_noise(const std::string& source) {
  NoisyParse out;
  std::istringstream lines(source);
  std::string line;
  int line_no = 0;
  constexpr const char* kPrefix = "#pragma atlas noise";
  while (std::getline(lines, line)) {
    ++line_no;
    const std::string t = trimmed(line);
    if (t.rfind(kPrefix, 0) == 0) {
      PragmaParser(t.substr(std::string(kPrefix).size()), line_no)
          .parse_into(out.noise);
    } else if (t.rfind("#pragma atlas", 0) == 0) {
      throw Error("line " + std::to_string(line_no) +
                  ": unknown atlas pragma (expected '#pragma atlas noise "
                  "...')",
                ErrorCode::invalid_argument);
    }
    // Other pragmas fall through to parse(), which skips '#' lines.
  }
  out.circuit = parse(source, &out.gate_lines);
  return out;
}

NoisyParse parse_file_with_noise(const std::string& path) {
  std::ifstream in(path);
  ATLAS_CHECK_ARG(in.good(), "cannot open " << path);
  std::ostringstream os;
  os << in.rdbuf();
  NoisyParse out = parse_with_noise(os.str());
  out.circuit.set_name(path);
  return out;
}

namespace {

/// Serializes an uncontrolled Unitary gate (the optimizer's resynthesis
/// products) as standard qelib1 gates, exact up to a global phase —
/// QASM 2 cannot express one. Single-qubit unitaries become one u3;
/// two-qubit *diagonal* unitaries become p/p/cp. Anything else (and
/// non-unitary trajectory operators) still refuses.
void emit_unitary(std::ostringstream& os, const Gate& g) {
  ATLAS_CHECK_ARG(g.num_controls() == 0 &&
                  (g.num_qubits() == 1 ||
                   (g.num_qubits() == 2 && g.fully_diagonal())),
              "cannot serialize opaque unitary gate '"
                  << g.to_string()
                  << "' to QASM (supported: uncontrolled 1q unitaries and "
                  << "2q diagonals, up to global phase)");
  const Matrix m = g.target_matrix();
  ATLAS_CHECK_ARG(m.is_unitary(1e-9), "cannot serialize non-unitary gate '"
                                      << g.to_string() << "' to QASM");
  if (g.num_qubits() == 1) {
    const Amp a = m(0, 0), b = m(0, 1), c = m(1, 0), d = m(1, 1);
    const double theta = 2.0 * std::atan2(std::abs(c), std::abs(a));
    // Global phase alpha normalizes the first nonzero column entry.
    const double alpha = std::abs(a) > 1e-12 ? std::arg(a) : 0.0;
    const double phi = std::abs(c) > 1e-12 ? std::arg(c) - alpha : 0.0;
    const double lambda = std::abs(b) > 1e-12 ? std::arg(-b) - alpha
                                              : std::arg(d) - alpha - phi;
    os << "u3(" << theta << "," << phi << "," << lambda << ") q["
       << g.qubits()[0] << "];\n";
    return;
  }
  // diag(d0,d1,d2,d3) over bits (q1,q0) = e^{i arg d0} * p(q0, arg
  // d1/d0) p(q1, arg d2/d0) cp(q0, q1, arg d0*d3/(d1*d2)).
  const Amp d0 = m(0, 0), d1 = m(1, 1), d2 = m(2, 2), d3 = m(3, 3);
  const Qubit q0 = g.qubits()[0], q1 = g.qubits()[1];
  os << "p(" << std::arg(d1 / d0) << ") q[" << q0 << "];\n";
  os << "p(" << std::arg(d2 / d0) << ") q[" << q1 << "];\n";
  os << "cp(" << std::arg((d0 * d3) / (d1 * d2)) << ") q[" << q0 << "],q["
     << q1 << "];\n";
}

}  // namespace

std::string to_qasm(const Circuit& circuit) {
  std::ostringstream os;
  const std::vector<std::string> symbols = circuit.symbols();
  if (symbols.empty()) {
    os << "OPENQASM 2.0;\n";
    os << "include \"qelib1.inc\";\n";
  } else {
    // Symbolic parameters need OpenQASM 3 input declarations; our own
    // parser round-trips either dialect. Engine-internal slot symbols
    // ("$k", from canonicalized plans) are not QASM identifiers and
    // cannot round-trip, so refuse them up front.
    os << "OPENQASM 3.0;\n";
    os << "include \"stdgates.inc\";\n";
    for (const std::string& s : symbols) {
      ATLAS_CHECK_ARG(std::isalpha(static_cast<unsigned char>(s[0])) != 0 ||
                      s[0] == '_',
                  "cannot serialize symbol '"
                      << s << "' to QASM (not a valid identifier)");
      os << "input float " << s << ";\n";
    }
  }
  os << "qreg q[" << circuit.num_qubits() << "];\n";
  os.precision(17);
  for (const Gate& g : circuit.gates()) {
    if (g.kind() == GateKind::Unitary) {
      emit_unitary(os, g);
      continue;
    }
    os << gate_kind_name(g.kind());
    if (!g.params().empty()) {
      os << "(";
      for (std::size_t i = 0; i < g.params().size(); ++i) {
        if (i) os << ",";
        os << g.params()[i];
      }
      os << ")";
    }
    os << " ";
    bool first = true;
    // QASM argument order matches the factory order: controls first.
    for (Qubit q : g.controls()) {
      if (!first) os << ",";
      os << "q[" << q << "]";
      first = false;
    }
    for (Qubit q : g.targets()) {
      if (!first) os << ",";
      os << "q[" << q << "]";
      first = false;
    }
    os << ";\n";
  }
  return os.str();
}

}  // namespace atlas::qasm
