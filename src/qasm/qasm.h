#pragma once

/// \file qasm.h
/// OpenQASM 2.0 subset reader/writer. Atlas (like the original system)
/// consumes MQT-Bench-style QASM files; this module parses the gate set
/// emitted by those generators and can round-trip circuits produced by
/// atlas::circuits.
///
/// Supported statements: OPENQASM/include headers, qreg/creg
/// declarations, the qelib1 gates implemented in ir/gate.h, `barrier`
/// and `measure` (both ignored for state-vector simulation), OpenQASM 3
/// `input float`/`input angle` parameter declarations, and parameter
/// expressions over +,-,*,/, unary minus, parentheses, `pi`, decimal
/// literals, and declared symbols (affine combinations only — symbolic
/// products are rejected). Parameterized circuits export as OpenQASM 3
/// with their `input float` declarations and round-trip through
/// parse().

#include <string>

#include "ir/circuit.h"

namespace atlas::qasm {

/// Parses QASM source text into a circuit. Throws atlas::Error with a
/// line number on malformed input.
Circuit parse(const std::string& source);

/// Reads and parses a .qasm file.
Circuit parse_file(const std::string& path);

/// Serializes a circuit as OpenQASM 2.0.
std::string to_qasm(const Circuit& circuit);

}  // namespace atlas::qasm
