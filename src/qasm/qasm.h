#pragma once

/// \file qasm.h
/// OpenQASM 2.0 subset reader/writer. Atlas (like the original system)
/// consumes MQT-Bench-style QASM files; this module parses the gate set
/// emitted by those generators and can round-trip circuits produced by
/// atlas::circuits.
///
/// Supported statements: OPENQASM/include headers, qreg/creg
/// declarations, the qelib1 gates implemented in ir/gate.h, `barrier`
/// and `measure` (both ignored for state-vector simulation), OpenQASM 3
/// `input float`/`input angle` parameter declarations, and parameter
/// expressions over +,-,*,/, unary minus, parentheses, `pi`, decimal
/// literals, and declared symbols (affine combinations only — symbolic
/// products are rejected). Parameterized circuits export as OpenQASM 3
/// with their `input float` declarations and round-trip through
/// parse().
///
/// Noise attachment rides along as pragma lines (one per line, no
/// semicolon), read by parse_with_noise() and ignored by parse():
///
///   #pragma atlas noise depolarizing(0.01) all
///   #pragma atlas noise amplitude_damping(0.05) gate cx
///   #pragma atlas noise bit_flip(0.02) qubit 3
///   #pragma atlas noise readout(0.01, 0.03) all
///   #pragma atlas noise readout(0.1, 0.2) qubit 0
///
/// Channels: depolarizing, depolarizing2, bit_flip, phase_flip,
/// bit_phase_flip, amplitude_damping, phase_damping (one probability
/// argument each) and readout (p01, p10). Targets: `all`,
/// `gate <name>`, `qubit <k>` (readout: `all` or `qubit <k>`).

#include <string>
#include <vector>

#include "ir/circuit.h"
#include "noise/model.h"

namespace atlas::qasm {

/// Parses QASM source text into a circuit. Throws atlas::Error with a
/// line number on malformed input. `#pragma` lines are skipped (use
/// parse_with_noise to honor noise pragmas).
Circuit parse(const std::string& source);

/// As parse(), additionally recording source provenance: on return,
/// (*gate_lines)[i] is the 1-based source line gate i came from —
/// atlas-lint maps verifier diagnostics back through it for file:line
/// output. `gate_lines` may be null.
Circuit parse(const std::string& source, std::vector<int>* gate_lines);

/// Reads and parses a .qasm file.
Circuit parse_file(const std::string& path);

/// A parsed circuit together with its pragma-attached noise model and
/// per-gate source-line provenance (gate_lines[i] = 1-based line of
/// circuit gate i).
struct NoisyParse {
  Circuit circuit;
  noise::NoiseModel noise;
  std::vector<int> gate_lines;
};

/// As parse(), additionally honoring `#pragma atlas noise` lines.
/// Throws atlas::Error (with the line number) on a malformed noise
/// pragma; pragmas outside the `atlas` namespace are ignored.
NoisyParse parse_with_noise(const std::string& source);

/// Reads and parses a .qasm file with its noise pragmas.
NoisyParse parse_file_with_noise(const std::string& path);

/// Serializes a circuit as OpenQASM 2.0. Opaque Unitary gates (the
/// optimizer's resynthesis products) are lowered to standard gates —
/// single-qubit unitaries to one u3, two-qubit diagonals to p/p/cp —
/// exact up to a global phase QASM 2 cannot express, so optimized
/// circuits round-trip as rays; other Unitary shapes (and non-unitary
/// trajectory operators) throw atlas::Error.
std::string to_qasm(const Circuit& circuit);

}  // namespace atlas::qasm
