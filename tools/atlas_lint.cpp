// atlas-lint: run the verify/ invariant checkers over QASM files and
// report diagnostics with file:line provenance.
//
//   atlas-lint file.qasm...                 circuit + noise checks
//   atlas-lint --level boundaries ...       structural checks only
//   atlas-lint --shape 4,1,1 ...            also stage/kernelize under
//                                           the given L,R,G machine
//                                           shape and verify the plan
//   atlas-lint --metrics-catalog FILE       check an obs name catalog
//                                           (src/obs/names.h) for
//                                           duplicate name strings
//
// Exit codes: 0 clean, 1 diagnostics reported, 2 usage/parse/IO error.
//
// Parser errors already carry "line N:" prefixes; lint rewrites both
// them and verifier gate indices (via qasm::NoisyParse::gate_lines)
// into the editor-clickable "<file>:<line>:" form.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/pipeline.h"
#include "kernelize/kernelizer.h"
#include "qasm/qasm.h"
#include "staging/registry.h"
#include "verify/verify.h"

namespace {

using atlas::verify::VerifyLevel;

struct Options {
  VerifyLevel level = VerifyLevel::paranoid;
  bool have_shape = false;
  atlas::staging::MachineShape shape;
  int opt_level = 0;
  std::vector<std::string> files;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: atlas-lint [--level off|boundaries|paranoid] [--shape L,R,G]\n"
      "                  [--opt 0|1|2] <file.qasm>...\n"
      "       atlas-lint --metrics-catalog <names.h>\n"
      "\n"
      "Checks each QASM file against the engine's IR invariants\n"
      "(docs/VERIFY.md) and prints diagnostics as <file>:<line>: code:\n"
      "message. --shape additionally stages and kernelizes the circuit\n"
      "under an L local / R regional / G global qubit machine shape and\n"
      "verifies the resulting plan (L+R+G must equal the circuit's qubit\n"
      "count).\n");
}

bool parse_level(const std::string& s, VerifyLevel& out) {
  if (s == "off") out = VerifyLevel::off;
  else if (s == "boundaries") out = VerifyLevel::boundaries;
  else if (s == "paranoid") out = VerifyLevel::paranoid;
  else return false;
  return true;
}

bool parse_shape(const std::string& s, atlas::staging::MachineShape& out) {
  int l = 0, r = 0, g = 0;
  if (std::sscanf(s.c_str(), "%d,%d,%d", &l, &r, &g) != 3) return false;
  if (l < 0 || r < 0 || g < 0) return false;
  out.num_local = l;
  out.num_regional = r;
  out.num_global = g;
  return true;
}

/// "line 12: bad thing" -> prints "file.qasm:12: <tag>: bad thing";
/// messages without the parser's line prefix fall back to "file.qasm:".
void print_located(const std::string& file, const std::string& message,
                   const char* tag) {
  int line = 0;
  if (std::sscanf(message.c_str(), "line %d:", &line) == 1) {
    const std::size_t colon = message.find(':');
    std::printf("%s:%d: %s:%s\n", file.c_str(), line, tag,
                message.c_str() + colon + 1);
  } else {
    std::printf("%s: %s: %s\n", file.c_str(), tag, message.c_str());
  }
}

/// Prints one verifier diagnostic, resolving its gate index to a
/// source line when the provenance table covers it.
void print_diag(const std::string& file, const std::vector<int>& gate_lines,
                const atlas::verify::VerifyDiagnostic& d) {
  if (d.gate >= 0 && d.gate < static_cast<int>(gate_lines.size())) {
    std::printf("%s:%d: %s: %s\n", file.c_str(),
                gate_lines[static_cast<std::size_t>(d.gate)],
                atlas::verify::code_name(d.code), d.message.c_str());
  } else {
    std::printf("%s: %s\n", file.c_str(), d.to_string().c_str());
  }
}

/// Lints one file; returns the number of diagnostics (parse failures
/// count as one and short-circuit).
int lint_file(const std::string& file, const Options& opts) {
  std::ifstream in(file);
  if (!in.good()) {
    std::printf("%s: error: cannot open file\n", file.c_str());
    return 1;
  }
  std::ostringstream os;
  os << in.rdbuf();

  atlas::qasm::NoisyParse parsed;
  try {
    parsed = atlas::qasm::parse_with_noise(os.str());
    parsed.circuit.set_name(file);
  } catch (const atlas::Error& e) {
    print_located(file, e.what(), "parse error");
    return 1;
  }

  int findings = 0;
  const atlas::verify::VerifyReport circuit_report =
      atlas::verify::verify_circuit(parsed.circuit, opts.level);
  for (const auto& d : circuit_report.diags) print_diag(file, parsed.gate_lines, d);
  findings += static_cast<int>(circuit_report.diags.size());

  if (!parsed.noise.empty()) {
    const atlas::verify::VerifyReport noise_report =
        atlas::verify::verify_noise_model(
            parsed.noise, parsed.circuit.num_qubits(), opts.level);
    for (const auto& d : noise_report.diags)
      print_diag(file, parsed.gate_lines, d);
    findings += static_cast<int>(noise_report.diags.size());
  }

  if (opts.have_shape && findings == 0) {
    if (opts.shape.total() != parsed.circuit.num_qubits()) {
      std::printf("%s: error: --shape totals %d qubits, circuit has %d\n",
                  file.c_str(), opts.shape.total(),
                  parsed.circuit.num_qubits());
      return findings + 1;
    }
    atlas::CompilePipeline::Config pc;
    pc.shape = opts.shape;
    pc.opt.level = opts.opt_level;
    pc.verify = opts.level == VerifyLevel::off ? VerifyLevel::boundaries
                                               : opts.level;
    atlas::CompilePipeline pipeline(
        pc, atlas::staging::stager_registry().create("auto"),
        atlas::kernelize::kernelizer_registry().create("best"));
    try {
      atlas::CompileDiagnostics diag;
      pipeline.build_plan(pipeline.optimize(parsed.circuit), &diag);
      // Verifier findings surface on `diag` right before build_plan
      // throws; a clean return means the plan passed.
      for (const auto& d : diag.verify) print_diag(file, parsed.gate_lines, d);
      findings += static_cast<int>(diag.verify.size());
    } catch (const atlas::Error& e) {
      print_located(file, e.what(), "plan error");
      ++findings;
    }
  }
  return findings;
}

/// Checks an obs name catalog (src/obs/names.h shape: `constexpr char
/// kName[] = "string";`, possibly wrapped) for two constants carrying
/// the same string — the way a copy-pasted registration ends up
/// double-counting under one name. Returns 0 clean, 1 on duplicates,
/// 2 on IO error.
int check_metrics_catalog(const std::string& file) {
  std::ifstream in(file);
  if (!in.good()) {
    std::fprintf(stderr, "atlas-lint: cannot open %s\n", file.c_str());
    return 2;
  }
  std::ostringstream os;
  os << in.rdbuf();
  const std::string text = os.str();

  // name string -> line of first definition
  std::map<std::string, int> first_seen;
  int duplicates = 0;
  std::size_t pos = 0;
  while ((pos = text.find("constexpr char", pos)) != std::string::npos) {
    const std::size_t open = text.find('"', pos);
    pos += std::strlen("constexpr char");
    if (open == std::string::npos) break;
    const std::size_t close = text.find('"', open + 1);
    if (close == std::string::npos) break;
    const std::string name = text.substr(open + 1, close - open - 1);
    const int line = 1 + static_cast<int>(
        std::count(text.begin(),
                   text.begin() + static_cast<std::ptrdiff_t>(open), '\n'));
    const auto [it, inserted] = first_seen.emplace(name, line);
    if (!inserted) {
      std::printf("%s:%d: duplicate-metric-name: \"%s\" already defined at "
                  "line %d\n",
                  file.c_str(), line, name.c_str(), it->second);
      ++duplicates;
    }
  }
  if (first_seen.empty()) {
    std::fprintf(stderr,
                 "atlas-lint: %s contains no `constexpr char ... = \"...\"` "
                 "entries — wrong file?\n",
                 file.c_str());
    return 2;
  }
  if (duplicates == 0) {
    std::printf("%s: OK (%zu names)\n", file.c_str(), first_seen.size());
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--metrics-catalog" && i + 1 < argc) {
      return check_metrics_catalog(argv[i + 1]);
    } else if (arg == "--level" && i + 1 < argc) {
      if (!parse_level(argv[++i], opts.level)) {
        std::fprintf(stderr, "atlas-lint: bad --level '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--shape" && i + 1 < argc) {
      if (!parse_shape(argv[++i], opts.shape)) {
        std::fprintf(stderr, "atlas-lint: bad --shape '%s' (want L,R,G)\n",
                     argv[i]);
        return 2;
      }
      opts.have_shape = true;
    } else if (arg == "--opt" && i + 1 < argc) {
      opts.opt_level = std::atoi(argv[++i]);
      if (opts.opt_level < 0 || opts.opt_level > 2) {
        std::fprintf(stderr, "atlas-lint: bad --opt '%s'\n", argv[i]);
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "atlas-lint: unknown option '%s'\n", arg.c_str());
      usage();
      return 2;
    } else {
      opts.files.push_back(arg);
    }
  }
  if (opts.files.empty()) {
    usage();
    return 2;
  }

  int total = 0;
  for (const std::string& file : opts.files) {
    const int n = lint_file(file, opts);
    if (n == 0) std::printf("%s: OK\n", file.c_str());
    total += n;
  }
  return total == 0 ? 0 : 1;
}
